//! The built-in litmus library: the paper's §2 tests (with the paper's
//! verdicts) and the classic POWER suite with expectations from the
//! published PLDI'11/MICRO'15 validation results.

use crate::test::Expectation;

/// One library test: source text plus its architectural expectation for
/// the `exists` condition.
#[derive(Clone, Copy, Debug)]
pub struct LitmusEntry {
    /// A stable identifier.
    pub name: &'static str,
    /// The `.litmus` source.
    pub source: &'static str,
    /// Paper/hardware expectation.
    pub expect: Expectation,
    /// Which part of the paper/validation pins it.
    pub pinned_by: &'static str,
}

/// The six tests printed in the paper's §2, with the paper's verdicts.
#[must_use]
pub fn paper_section2_suite() -> Vec<LitmusEntry> {
    vec![
        LitmusEntry {
            name: "MP+sync+ctrl",
            expect: Expectation::Allowed,
            pinned_by: "§2.1.1 (speculative execution)",
            source: r"POWER MP+sync+ctrl
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y; 1:r7=1;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | lwz r5,0(r2) ;
 sync         | cmpw r5,r7   ;
 stw r8,0(r2) | beq L        ;
              | L:           ;
              | lwz r4,0(r1) ;
exists (1:r5=1 /\ 1:r4=0)
",
        },
        LitmusEntry {
            name: "MP+sync+rs",
            expect: Expectation::Allowed,
            pinned_by: "§2.1.2 (no per-thread register state / shadow registers)",
            source: r"POWER MP+sync+rs
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | lwz r5,0(r2) ;
 sync         | mr r6,r5     ;
 stw r8,0(r2) | lwz r5,0(r1) ;
exists (1:r6=1 /\ 1:r5=0)
",
        },
        LitmusEntry {
            name: "MP+sync+addr-cr",
            expect: Expectation::Allowed,
            pinned_by: "§2.1.4 (register granularity: CR3 write vs CR4 read)",
            source: r"POWER MP+sync+addr-cr
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y;
x=0; y=0;
}
 P0           | P1              ;
 stw r7,0(r1) | lwz r5,0(r2)    ;
 sync         | mtocrf cr3,r5   ;
 stw r8,0(r2) | mfocrf r6,cr4   ;
              | xor r7,r6,r6    ;
              | lwzx r8,r1,r7   ;
exists (1:r5=1 /\ 1:r8=0)
",
        },
        LitmusEntry {
            name: "PPOCA",
            expect: Expectation::Allowed,
            pinned_by: "§2.1.5 (forwarding from uncommitted speculative writes)",
            source: r"POWER PPOCA
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y; 1:r3=z; 1:r7=1;
x=0; y=0; z=0;
}
 P0           | P1           ;
 stw r7,0(r1) | lwz r5,0(r2) ;
 sync         | cmpw r5,r7   ;
 stw r8,0(r2) | beq L        ;
              | L:           ;
              | stw r7,0(r3) ;
              | lwz r6,0(r3) ;
              | xor r6,r6,r6 ;
              | lwzx r4,r6,r1 ;
exists (1:r5=1 /\ 1:r4=0)
",
        },
        LitmusEntry {
            name: "LB+datas+WW",
            expect: Expectation::Allowed,
            pinned_by: "§2.1.6 (footprint determined after address reads only)",
            source: r"POWER LB+datas+WW
{
0:r1=x; 0:r2=y; 0:r3=z; 0:r9=1;
1:r1=x; 1:r2=y; 1:r4=w; 1:r9=1;
x=0; y=0; z=0; w=0;
}
 P0           | P1           ;
 lwz r5,0(r1) | lwz r6,0(r2) ;
 stw r5,0(r3) | stw r6,0(r4) ;
 stw r9,0(r2) | stw r9,0(r1) ;
exists (0:r5=1 /\ 1:r6=1)
",
        },
        LitmusEntry {
            name: "LB+addrs+WW",
            expect: Expectation::Forbidden,
            pinned_by: "§2.1.6 (undetermined middle-write addresses block the last writes)",
            source: r"POWER LB+addrs+WW
{
0:r1=x; 0:r2=y; 0:r3=z; 0:r9=1;
1:r1=x; 1:r2=y; 1:r4=w; 1:r9=1;
x=0; y=0; z=0; w=0;
}
 P0             | P1             ;
 lwz r5,0(r1)   | lwz r6,0(r2)   ;
 xor r10,r5,r5  | xor r10,r6,r6  ;
 stwx r9,r10,r3 | stwx r9,r10,r4 ;
 stw r9,0(r2)   | stw r9,0(r1)   ;
exists (0:r5=1 /\ 1:r6=1)
",
        },
    ]
}

/// The full hand-curated library: §2 tests plus the classic POWER
/// corpus.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn library() -> Vec<LitmusEntry> {
    let mut v = paper_section2_suite();
    v.extend(vec![
        LitmusEntry {
            name: "MP",
            expect: Expectation::Allowed,
            pinned_by: "baseline reordering",
            source: r"POWER MP
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | lwz r5,0(r2) ;
 stw r8,0(r2) | lwz r4,0(r1) ;
exists (1:r5=1 /\ 1:r4=0)
",
        },
        LitmusEntry {
            name: "MP+syncs",
            expect: Expectation::Forbidden,
            pinned_by: "sync/sync message passing",
            source: r"POWER MP+syncs
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | lwz r5,0(r2) ;
 sync         | sync         ;
 stw r8,0(r2) | lwz r4,0(r1) ;
exists (1:r5=1 /\ 1:r4=0)
",
        },
        LitmusEntry {
            name: "MP+sync+addr",
            expect: Expectation::Forbidden,
            pinned_by: "address dependencies order reads",
            source: r"POWER MP+sync+addr
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y;
x=0; y=0;
}
 P0           | P1            ;
 stw r7,0(r1) | lwz r5,0(r2)  ;
 sync         | xor r6,r5,r5  ;
 stw r8,0(r2) | lwzx r4,r6,r1 ;
exists (1:r5=1 /\ 1:r4=0)
",
        },
        LitmusEntry {
            name: "MP+lwsync+addr",
            expect: Expectation::Forbidden,
            pinned_by: "lwsync write-side ordering",
            source: r"POWER MP+lwsync+addr
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y;
x=0; y=0;
}
 P0           | P1            ;
 stw r7,0(r1) | lwz r5,0(r2)  ;
 lwsync       | xor r6,r5,r5  ;
 stw r8,0(r2) | lwzx r4,r6,r1 ;
exists (1:r5=1 /\ 1:r4=0)
",
        },
        LitmusEntry {
            name: "MP+sync+ctrlisync",
            expect: Expectation::Forbidden,
            pinned_by: "ctrl+isync orders reads",
            source: r"POWER MP+sync+ctrlisync
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y; 1:r7=1;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | lwz r5,0(r2) ;
 sync         | cmpw r5,r7   ;
 stw r8,0(r2) | beq L        ;
              | L:           ;
              | isync        ;
              | lwz r4,0(r1) ;
exists (1:r5=1 /\ 1:r4=0)
",
        },
        LitmusEntry {
            name: "SB",
            expect: Expectation::Allowed,
            pinned_by: "store buffering",
            source: r"POWER SB
{
0:r1=x; 0:r2=y; 0:r7=1;
1:r1=x; 1:r2=y; 1:r7=1;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | stw r7,0(r2) ;
 lwz r5,0(r2) | lwz r6,0(r1) ;
exists (0:r5=0 /\ 1:r6=0)
",
        },
        LitmusEntry {
            name: "SB+syncs",
            expect: Expectation::Forbidden,
            pinned_by: "sync acknowledgement (full fence)",
            source: r"POWER SB+syncs
{
0:r1=x; 0:r2=y; 0:r7=1;
1:r1=x; 1:r2=y; 1:r7=1;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | stw r7,0(r2) ;
 sync         | sync         ;
 lwz r5,0(r2) | lwz r6,0(r1) ;
exists (0:r5=0 /\ 1:r6=0)
",
        },
        LitmusEntry {
            name: "SB+lwsyncs",
            expect: Expectation::Allowed,
            pinned_by: "lwsync is not a store-load fence",
            source: r"POWER SB+lwsyncs
{
0:r1=x; 0:r2=y; 0:r7=1;
1:r1=x; 1:r2=y; 1:r7=1;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | stw r7,0(r2) ;
 lwsync       | lwsync       ;
 lwz r5,0(r2) | lwz r6,0(r1) ;
exists (0:r5=0 /\ 1:r6=0)
",
        },
        LitmusEntry {
            name: "LB",
            expect: Expectation::Allowed,
            pinned_by: "load buffering (architecturally allowed)",
            source: r"POWER LB
{
0:r1=x; 0:r2=y; 0:r9=1;
1:r1=x; 1:r2=y; 1:r9=1;
x=0; y=0;
}
 P0           | P1           ;
 lwz r5,0(r1) | lwz r6,0(r2) ;
 stw r9,0(r2) | stw r9,0(r1) ;
exists (0:r5=1 /\ 1:r6=1)
",
        },
        LitmusEntry {
            name: "LB+addrs",
            expect: Expectation::Forbidden,
            pinned_by: "address dependencies order read→write",
            source: r"POWER LB+addrs
{
0:r1=x; 0:r2=y; 0:r9=1;
1:r1=x; 1:r2=y; 1:r9=1;
x=0; y=0;
}
 P0             | P1             ;
 lwz r5,0(r1)   | lwz r6,0(r2)   ;
 xor r10,r5,r5  | xor r10,r6,r6  ;
 stwx r9,r10,r2 | stwx r9,r10,r1 ;
exists (0:r5=1 /\ 1:r6=1)
",
        },
        LitmusEntry {
            name: "PPOAA",
            expect: Expectation::Forbidden,
            pinned_by: "address dependency into the forwarded store",
            source: r"POWER PPOAA
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y; 1:r3=z; 1:r7=1;
x=0; y=0; z=0;
}
 P0           | P1             ;
 stw r7,0(r1) | lwz r5,0(r2)   ;
 sync         | xor r9,r5,r5   ;
 stw r8,0(r2) | stwx r7,r9,r3  ;
              | lwz r6,0(r3)   ;
              | xor r6,r6,r6   ;
              | lwzx r4,r6,r1  ;
exists (1:r5=1 /\ 1:r4=0)
",
        },
        LitmusEntry {
            name: "WRC+pos",
            expect: Expectation::Allowed,
            pinned_by: "non-multi-copy-atomic storage",
            source: r"POWER WRC+pos
{
0:r1=x; 0:r7=1;
1:r1=x; 1:r2=y; 1:r7=1;
2:r1=x; 2:r2=y;
x=0; y=0;
}
 P0           | P1           | P2            ;
 stw r7,0(r1) | lwz r5,0(r1) | lwz r6,0(r2)  ;
              | stw r7,0(r2) | xor r9,r6,r6  ;
              |              | lwzx r4,r9,r1 ;
exists (1:r5=1 /\ 2:r6=1 /\ 2:r4=0)
",
        },
        LitmusEntry {
            name: "WRC+sync+addr",
            expect: Expectation::Forbidden,
            pinned_by: "A-cumulativity of sync",
            source: r"POWER WRC+sync+addr
{
0:r1=x; 0:r7=1;
1:r1=x; 1:r2=y; 1:r7=1;
2:r1=x; 2:r2=y;
x=0; y=0;
}
 P0           | P1           | P2            ;
 stw r7,0(r1) | lwz r5,0(r1) | lwz r6,0(r2)  ;
              | sync         | xor r9,r6,r6  ;
              | stw r7,0(r2) | lwzx r4,r9,r1 ;
exists (1:r5=1 /\ 2:r6=1 /\ 2:r4=0)
",
        },
        LitmusEntry {
            name: "WRC+lwsync+addr",
            expect: Expectation::Forbidden,
            pinned_by: "A-cumulativity of lwsync",
            source: r"POWER WRC+lwsync+addr
{
0:r1=x; 0:r7=1;
1:r1=x; 1:r2=y; 1:r7=1;
2:r1=x; 2:r2=y;
x=0; y=0;
}
 P0           | P1           | P2            ;
 stw r7,0(r1) | lwz r5,0(r1) | lwz r6,0(r2)  ;
              | lwsync       | xor r9,r6,r6  ;
              | stw r7,0(r2) | lwzx r4,r9,r1 ;
exists (1:r5=1 /\ 2:r6=1 /\ 2:r4=0)
",
        },
        LitmusEntry {
            name: "CoRR",
            expect: Expectation::Forbidden,
            pinned_by: "per-location coherence of reads",
            source: r"POWER CoRR
{
0:r1=x; 0:r7=1;
1:r1=x;
x=0;
}
 P0           | P1           ;
 stw r7,0(r1) | lwz r5,0(r1) ;
              | lwz r6,0(r1) ;
exists (1:r5=1 /\ 1:r6=0)
",
        },
        LitmusEntry {
            name: "CoWW",
            expect: Expectation::Forbidden,
            pinned_by: "per-location coherence of writes",
            source: r"POWER CoWW
{
0:r1=x; 0:r7=1; 0:r8=2;
x=0;
}
 P0           ;
 stw r7,0(r1) ;
 stw r8,0(r1) ;
exists (x=1)
",
        },
        LitmusEntry {
            name: "CoWR",
            expect: Expectation::Forbidden,
            pinned_by: "a read may not ignore the po-previous write",
            source: r"POWER CoWR
{
0:r1=x; 0:r7=1;
1:r1=x; 1:r7=2;
x=0;
}
 P0           | P1           ;
 stw r7,0(r1) | stw r7,0(r1) ;
 lwz r5,0(r1) |              ;
exists (0:r5=0)
",
        },
        LitmusEntry {
            name: "CoRW1",
            expect: Expectation::Forbidden,
            pinned_by: "a read may not see the po-later write",
            source: r"POWER CoRW1
{
0:r1=x; 0:r7=1;
x=0;
}
 P0           ;
 lwz r5,0(r1) ;
 stw r7,0(r1) ;
exists (0:r5=1)
",
        },
        LitmusEntry {
            name: "S+sync+po",
            expect: Expectation::Allowed,
            pinned_by: "W-R ordering absent without dependency",
            source: r"POWER S+sync+po
{
0:r1=x; 0:r2=y; 0:r7=2; 0:r8=1;
1:r1=x; 1:r2=y; 1:r7=1;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | lwz r5,0(r2) ;
 sync         | stw r7,0(r1) ;
 stw r8,0(r2) |              ;
exists (1:r5=1 /\ x=2)
",
        },
        LitmusEntry {
            name: "S+sync+addr",
            expect: Expectation::Forbidden,
            pinned_by: "address dependency orders read→write",
            source: r"POWER S+sync+addr
{
0:r1=x; 0:r2=y; 0:r7=2; 0:r8=1;
1:r1=x; 1:r2=y; 1:r7=1;
x=0; y=0;
}
 P0           | P1             ;
 stw r7,0(r1) | lwz r5,0(r2)   ;
 sync         | xor r9,r5,r5   ;
 stw r8,0(r2) | stwx r7,r9,r1  ;
exists (1:r5=1 /\ x=2)
",
        },
        LitmusEntry {
            name: "2+2W",
            expect: Expectation::Allowed,
            pinned_by: "unconstrained write races",
            source: r"POWER 2+2W
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=2;
1:r1=x; 1:r2=y; 1:r7=1; 1:r8=2;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | stw r7,0(r2) ;
 stw r8,0(r2) | stw r8,0(r1) ;
exists (x=1 /\ y=1)
",
        },
        LitmusEntry {
            name: "2+2W+syncs",
            expect: Expectation::Forbidden,
            pinned_by: "sync-separated writes propagate in order",
            source: r"POWER 2+2W+syncs
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=2;
1:r1=x; 1:r2=y; 1:r7=1; 1:r8=2;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | stw r7,0(r2) ;
 sync         | sync         ;
 stw r8,0(r2) | stw r8,0(r1) ;
exists (x=1 /\ y=1)
",
        },
        LitmusEntry {
            name: "MP+sync+po",
            expect: Expectation::Allowed,
            pinned_by: "reader-side po alone does not order reads",
            source: r"POWER MP+sync+po
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | lwz r5,0(r2) ;
 sync         | lwz r4,0(r1) ;
 stw r8,0(r2) |              ;
exists (1:r5=1 /\ 1:r4=0)
",
        },
        LitmusEntry {
            name: "MP+po+addr",
            expect: Expectation::Allowed,
            pinned_by: "writer-side po alone does not order writes",
            source: r"POWER MP+po+addr
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y;
x=0; y=0;
}
 P0           | P1            ;
 stw r7,0(r1) | lwz r5,0(r2)  ;
 stw r8,0(r2) | xor r6,r5,r5  ;
              | lwzx r4,r6,r1 ;
exists (1:r5=1 /\ 1:r4=0)
",
        },
    ]);
    v
}

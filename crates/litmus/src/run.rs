//! Running litmus tests through the exhaustive oracle.

use crate::cond::Quantifier;
use crate::library::LitmusEntry;
use crate::test::{Expectation, LitmusTest};
use ppc_bits::Bv;
use ppc_idl::Reg;
use ppc_model::{explore_limited, ExploreLimits, ModelParams, Program, SystemState};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Where each thread's code is placed (far apart, so speculative fetch
/// cannot run off the end of one thread into another).
fn code_base(tid: usize) -> u64 {
    0x5_0000 + 0x1000 * tid as u64
}

/// The result of exhaustively checking one test.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Test name.
    pub name: String,
    /// Number of distinct observable final states.
    pub finals: usize,
    /// Whether some final state satisfied the (existential) condition.
    pub witnessed: bool,
    /// Whether the quantified condition holds
    /// (`exists` → witnessed, `~exists` → not witnessed,
    /// `forall` → all satisfied).
    pub holds: bool,
    /// Exploration statistics.
    pub stats: ppc_model::ExplorationStats,
}

/// Build the initial [`SystemState`] for a test.
#[must_use]
pub fn build_system(test: &LitmusTest, params: &ModelParams) -> SystemState {
    let code: Vec<(u64, Vec<ppc_isa::Instruction>)> = test
        .threads
        .iter()
        .enumerate()
        .map(|(tid, t)| (code_base(tid), t.instrs.clone()))
        .collect();
    let program = Arc::new(Program::from_threads(&code));
    let thread_inits = test
        .threads
        .iter()
        .enumerate()
        .map(|(tid, t)| {
            let regs: BTreeMap<Reg, Bv> = t
                .init_regs
                .iter()
                .map(|(&g, &v)| (Reg::Gpr(g), Bv::from_u64(v, 64)))
                .collect();
            (regs, code_base(tid))
        })
        .collect();
    // Word-sized locations, as in the POWER litmus corpus.
    let initial_mem: Vec<(u64, Bv)> = test
        .locations
        .iter()
        .map(|(name, &addr)| {
            let v = test.init_mem.get(name).copied().unwrap_or(0);
            (addr, Bv::from_u64(v, 32))
        })
        .collect();
    SystemState::new(program, thread_inits, &initial_mem, params.clone())
}

/// Exhaustively run a test and evaluate its final condition, with
/// parallelism and the state budget taken from `params`.
#[must_use]
pub fn run(test: &LitmusTest, params: &ModelParams) -> RunResult {
    run_limited(test, params, &ExploreLimits::from_params(params))
}

/// [`run`] with explicit exploration limits (thread count, state budget,
/// and an optional wall-clock deadline).
#[must_use]
pub fn run_limited(test: &LitmusTest, params: &ModelParams, limits: &ExploreLimits) -> RunResult {
    let state = build_system(test, params);
    let (reg_obs, mem_obs) = observations(test);
    let out = explore_limited(&state, &reg_obs, &mem_obs, limits);
    result_from_outcomes(test, &out)
}

/// The observation footprint a test's final condition needs: the
/// queried `(thread, register)` pairs and `(address, width)` memory
/// locations, each sorted and deduplicated.
pub type Observations = (Vec<(usize, Reg)>, Vec<(u64, usize)>);

/// The [`Observations`] of a test's final condition. Shared by the
/// in-process engines and the distributed workers (every process must
/// observe the *same* footprint or finals could not be merged
/// byte-identically).
#[must_use]
pub fn observations(test: &LitmusTest) -> Observations {
    let mut reg_obs = Vec::new();
    test.cond.expr.reg_atoms(&mut reg_obs);
    reg_obs.sort_unstable();
    reg_obs.dedup();
    let reg_obs: Vec<(usize, Reg)> = reg_obs.into_iter().map(|(t, g)| (t, Reg::Gpr(g))).collect();
    let mut mem_names = Vec::new();
    test.cond.expr.mem_atoms(&mut mem_names);
    mem_names.sort_unstable();
    mem_names.dedup();
    let mem_obs: Vec<(u64, usize)> = mem_names.iter().map(|n| (test.locations[n], 4)).collect();
    (reg_obs, mem_obs)
}

/// Evaluate a test's condition over explored outcomes — the common tail
/// of [`run_limited`] and the distributed runner.
pub(crate) fn result_from_outcomes(test: &LitmusTest, out: &ppc_model::Outcomes) -> RunResult {
    let witnessed = out
        .finals
        .iter()
        .any(|f| test.cond.expr.eval(f, &test.locations));
    let all = out
        .finals
        .iter()
        .all(|f| test.cond.expr.eval(f, &test.locations));
    let holds = match test.cond.quantifier {
        Quantifier::Exists => witnessed,
        Quantifier::NotExists => !witnessed,
        Quantifier::Forall => all,
    };
    RunResult {
        name: test.name.clone(),
        finals: out.finals.len(),
        witnessed,
        holds,
        stats: out.stats.clone(),
    }
}

/// A library entry's check report: model verdict vs expectation.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// The run result.
    pub result: RunResult,
    /// The paper/hardware expectation.
    pub expect: Expectation,
    /// Whether the model matches the expectation (the §7 validation
    /// criterion: the model verdict for the `exists` condition equals
    /// the architectural intent).
    pub matches: bool,
}

/// Run a library entry and compare against its expectation.
///
/// # Panics
///
/// Panics if the entry's source fails to parse (library sources are
/// fixed).
#[must_use]
pub fn run_entry(entry: &LitmusEntry, params: &ModelParams) -> CheckReport {
    run_entry_limited(entry, params, &ExploreLimits::from_params(params))
}

/// [`run_entry`] with explicit exploration limits.
///
/// # Panics
///
/// Panics if the entry's source fails to parse (library sources are
/// fixed).
#[must_use]
pub fn run_entry_limited(
    entry: &LitmusEntry,
    params: &ModelParams,
    limits: &ExploreLimits,
) -> CheckReport {
    let test = crate::parse(entry.source).expect("library test parses");
    let result = run_limited(&test, params, limits);
    let model_allows = result.witnessed;
    let matches = match entry.expect {
        Expectation::Allowed => model_allows,
        Expectation::Forbidden => !model_allows,
    };
    CheckReport {
        result,
        expect: entry.expect,
        matches,
    }
}

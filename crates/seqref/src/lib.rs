//! The sequential reference machine and the §7 sequential test
//! generator.
//!
//! The paper validates its ISA model by generating "random
//! single-instruction tests" and comparing the model (run in sequential
//! mode) against POWER 7 hardware, logging "the register values and
//! relevant memory state before and after execution", compared "up to
//! undef". We cannot run silicon, so the golden side is [`SeqMachine`]:
//! an independent, direct-state-update executor over the same
//! instruction semantics — a different consumer of the `Outcome`
//! interface than the concurrency model's thread subsystem, so the
//! differential test exercises both paths through the ISA semantics
//! (see `DESIGN.md` §2 for the substitution argument).
//!
//! [`testgen`] generates the per-instruction test programs "largely
//! automatically, from the … names and inferred types of instruction
//! fields" — here from the instruction AST and its analysed footprint —
//! with exhaustive enumeration of single-bit mode fields, like the
//! paper's.

mod machine;
mod testgen;

pub use machine::{MachineState, SeqError, SeqMachine};
pub use testgen::{generate_tests, run_conformance, ConformanceReport, SeqTest};

#[cfg(test)]
mod tests;

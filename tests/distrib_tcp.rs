//! Loopback-TCP differential and network-fault pinning of the
//! multi-machine transport (`crates/model/src/net.rs` +
//! `crates/model/src/distrib.rs`).
//!
//! The TCP transport carries the exact same seq-tagged frame protocol
//! as the Unix-socket path, so its acceptance bar is the same:
//! untruncated loopback-TCP runs must be **byte-identical**
//! (`Outcomes::finals` element-wise, plus visited-state / transition /
//! final-hit counts) to the sequential in-process engine — on a
//! library ladder, composed with spill stores / sleep-set reduction /
//! context bounding, through a checkpoint pause + resharded resume,
//! and on random programs from the shared fuzz generator.
//!
//! Robustness: every injected *lossy* network fault (dropped frame,
//! truncated frame, muted peer with stalled heartbeats, killed worker)
//! must end in a truncated result carrying a `store_error` and — with
//! a checkpoint configured — a *resumable* death checkpoint; never a
//! silent pass, never a hang (the mute test asserts wall-clock). Pure
//! *latency* faults (delayed frames, delayed probe replies) must be
//! absorbed: untruncated and byte-identical, pinning the probe-epoch
//! termination hardening end to end.
//!
//! Environment knobs: `DISTRIB_TCP_FUZZ_PROGRAMS` (default 4),
//! `DISTRIB_TCP_FUZZ_SEED`, `DISTRIB_TCP_FUZZ_BUDGET`, and
//! `DISTRIB_TCP_CHAOS_ITERS` (default 6) for the randomized fault
//! sweep.

mod common;

use common::{env_u64, gen_program};
use ppcmem::litmus::distrib::{outcomes_distributed, DistribConfig, WorkerLaunch};
use ppcmem::litmus::{build_system, library, observations, parse};
use ppcmem::model::distrib::DIE_AFTER_ENV;
use ppcmem::model::net::FAULT_ENV;
use ppcmem::model::{explore_limited, ExploreLimits, ModelParams, Outcomes};
use std::time::Instant;

/// Worker re-exec entry point (same shim contract as
/// `tests/distrib_oracle.rs`): a no-op in a normal test run, the
/// worker main when the coordinator's TCP env var is set.
#[test]
fn distrib_worker_shim() {
    ppcmem::litmus::maybe_run_worker();
}

/// A config whose workers are this test binary re-executed, connected
/// over loopback TCP instead of a Unix socket.
fn tcfg(workers: usize) -> DistribConfig {
    DistribConfig {
        workers,
        worker_args: vec!["distrib_worker_shim".to_owned(), "--exact".to_owned()],
        launch: WorkerLaunch::TcpLoopback,
        ..DistribConfig::default()
    }
}

/// Sequential in-process reference with the same observation footprint
/// the distributed workers derive from the test's condition.
fn sequential_reference(source: &str, params: &ModelParams, limits: &ExploreLimits) -> Outcomes {
    let test = parse(source).expect("source parses");
    let (reg_obs, mem_obs) = observations(&test);
    let state = build_system(&test, params);
    explore_limited(
        &state,
        &reg_obs,
        &mem_obs,
        &ExploreLimits {
            threads: 1,
            ..limits.clone()
        },
    )
}

/// Byte-identity of a TCP-distributed run against the sequential
/// reference: finals element-wise, and every count.
fn assert_identical(name: &str, mode: &str, reference: &Outcomes, got: &Outcomes) {
    assert!(
        !got.stats.truncated,
        "{name} [{mode}]: truncated ({:?})",
        got.stats.store_error
    );
    assert_eq!(
        reference.stats.states, got.stats.states,
        "{name} [{mode}]: visited-state count diverged"
    );
    assert_eq!(
        reference.stats.transitions, got.stats.transitions,
        "{name} [{mode}]: transition count diverged"
    );
    assert_eq!(
        reference.stats.final_hits, got.stats.final_hits,
        "{name} [{mode}]: final-hit count diverged"
    );
    assert!(
        reference.finals == got.finals,
        "{name} [{mode}]: final states diverged ({} vs {})",
        reference.finals.len(),
        got.finals.len()
    );
}

fn library_source(name: &str) -> &'static str {
    library()
        .into_iter()
        .find(|e| e.name == name)
        .unwrap_or_else(|| panic!("{name} in library"))
        .source
}

/// A ladder subset over loopback TCP, 2 and 3 shards, against the
/// sequential engine: byte-identical finals and counts (the tentpole's
/// clean-run acceptance bar; the full 30-test sweep runs in CI via
/// `conformance --distributed 2 --tcp`).
#[test]
fn tcp_matches_sequential_on_ladder() {
    let params = ModelParams::default();
    let limits = ExploreLimits::default();
    for name in ["CoRR", "MP", "SB", "2+2W", "WRC+pos"] {
        let source = library_source(name);
        let reference = sequential_reference(source, &params, &limits);
        assert!(!reference.stats.truncated, "{name}: reference truncated");
        for workers in [2usize, 3] {
            let got = outcomes_distributed(source, &params, &limits, &tcfg(workers));
            assert_identical(name, &format!("tcp-{workers}"), &reference, &got);
        }
    }
}

/// Composition: per-worker spill stores (`--max-resident`), sleep-set
/// reduction (`--reduced`, finals-identity as for every reduced
/// engine), and a context bound that must surface as `bounded` — all
/// over the TCP transport.
#[test]
fn tcp_composes_with_engine_features() {
    let limits = ExploreLimits::default();

    let source = library_source("2+2W");
    let reference = sequential_reference(source, &ModelParams::default(), &limits);
    let spill = ModelParams {
        max_resident_states: 16,
        ..ModelParams::default()
    };
    let got = outcomes_distributed(source, &spill, &limits, &tcfg(2));
    assert_identical("2+2W", "tcp-2+spill", &reference, &got);

    let source = library_source("MP+syncs");
    let reference = sequential_reference(source, &ModelParams::default(), &limits);
    let reduced = ModelParams {
        sleep_sets: true,
        ..ModelParams::default()
    };
    let got = outcomes_distributed(source, &reduced, &limits, &tcfg(2));
    assert!(
        !got.stats.truncated,
        "MP+syncs: reduced TCP run truncated ({:?})",
        got.stats.store_error
    );
    // Finals-identity is the reduction's whole guarantee; counts are
    // schedule-dependent (see tests/distrib_oracle.rs).
    assert!(
        reference.finals == got.finals,
        "MP+syncs: reduced TCP finals diverged ({} vs {})",
        reference.finals.len(),
        got.finals.len()
    );

    let source = library_source("MP");
    let bounded = ModelParams {
        max_context_switches: 1,
        ..ModelParams::default()
    };
    let got = outcomes_distributed(source, &bounded, &limits, &tcfg(2));
    assert!(!got.stats.truncated, "bounded TCP run truncated");
    assert!(
        got.stats.bounded,
        "a 1-switch bound on MP must suppress successors over TCP too"
    );
}

/// Checkpoint pause over TCP, resharded resume over TCP: byte-identical
/// to an uninterrupted sequential run, checkpoint deleted on
/// completion. The checkpoint format is transport-agnostic — the same
/// file would resume on Unix sockets.
#[test]
fn tcp_checkpoint_pause_resume_is_byte_identical() {
    let source = library_source("MP");
    let params = ModelParams::default();
    let full = ExploreLimits::default();
    let reference = sequential_reference(source, &params, &full);
    assert!(!reference.stats.truncated);

    let tmp = std::env::temp_dir().join(format!("ppcmem-tcp-ck-{}", std::process::id()));
    let _ = std::fs::remove_file(&tmp);
    let mut cfg = tcfg(2);
    cfg.checkpoint = Some(tmp.clone());

    let paused = outcomes_distributed(
        source,
        &params,
        &ExploreLimits {
            max_states: 200,
            ..ExploreLimits::default()
        },
        &cfg,
    );
    assert!(paused.stats.truncated, "budget pause must truncate");
    assert!(tmp.exists(), "graceful pause must write the checkpoint");

    cfg.workers = 3;
    let resumed = outcomes_distributed(source, &params, &full, &cfg);
    assert_identical("MP", "tcp pause+resume", &reference, &resumed);
    assert!(
        !tmp.exists(),
        "an untruncated completion must delete the checkpoint"
    );
}

/// Random-program differential over a seed range disjoint from every
/// other fuzz suite: sequential vs 2-shard loopback TCP, byte for byte.
#[test]
fn tcp_fuzz_matches_sequential() {
    let programs = env_u64("DISTRIB_TCP_FUZZ_PROGRAMS", 4);
    let seed0 = env_u64("DISTRIB_TCP_FUZZ_SEED", 0x7C9_0D15_7AB1_E001);
    let budget = env_u64("DISTRIB_TCP_FUZZ_BUDGET", 60_000) as usize;
    let limits = ExploreLimits {
        max_states: budget,
        ..ExploreLimits::default()
    };
    let params = ModelParams::default();
    let mut checked = 0usize;
    let mut skipped = 0usize;
    for i in 0..programs {
        let seed = seed0.wrapping_add(i);
        let prog = gen_program(seed);
        let reference = sequential_reference(&prog.source, &params, &limits);
        if reference.stats.truncated {
            skipped += 1;
            continue;
        }
        let got = outcomes_distributed(&prog.source, &params, &limits, &tcfg(2));
        assert_identical(
            &format!("seed {seed:#018x}\n{}", prog.source),
            "tcp-2",
            &reference,
            &got,
        );
        checked += 1;
    }
    assert!(
        checked > skipped,
        "fuzz coverage collapsed: {checked} checked vs {skipped} skipped"
    );
}

/// Run MP over 2 TCP shards with `fault` injected into shard 0, a
/// checkpoint configured, and (optionally) tightened liveness
/// tunables. Returns the degraded outcome plus the checkpoint path.
fn faulted_mp_run(
    fault: &str,
    heartbeat_ms: Option<u64>,
    peer_timeout_ms: Option<u64>,
    tag: &str,
) -> (Outcomes, DistribConfig, std::path::PathBuf) {
    let tmp = std::env::temp_dir().join(format!("ppcmem-tcp-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_file(&tmp);
    let mut cfg = tcfg(2);
    cfg.checkpoint = Some(tmp.clone());
    cfg.worker_env = vec![(FAULT_ENV.to_owned(), fault.to_owned())];
    cfg.heartbeat_ms = heartbeat_ms;
    cfg.peer_timeout_ms = peer_timeout_ms;
    let got = outcomes_distributed(
        library_source("MP"),
        &ModelParams::default(),
        &ExploreLimits::default(),
        &cfg,
    );
    (got, cfg, tmp)
}

/// Assert the lossy-fault contract: truncated + `store_error`, a
/// resumable death checkpoint, and a fault-free resume completing to
/// the exact sequential final-state set.
fn assert_lossy_fault_degrades_then_resumes(what: &str, got: &Outcomes, mut cfg: DistribConfig) {
    assert!(got.stats.truncated, "{what}: lossy fault must truncate");
    let err = got
        .stats
        .store_error
        .as_deref()
        .unwrap_or_else(|| panic!("{what}: lossy fault must set store_error"));
    assert!(
        err.contains("lost") || err.contains("worker"),
        "{what}: unhelpful degradation report: {err}"
    );
    let ck = cfg.checkpoint.clone().expect("checkpoint configured");
    assert!(
        ck.exists(),
        "{what}: lossy fault must leave a resumable death checkpoint"
    );
    let reference = sequential_reference(
        library_source("MP"),
        &ModelParams::default(),
        &ExploreLimits::default(),
    );
    cfg.worker_env.clear();
    let resumed = outcomes_distributed(
        library_source("MP"),
        &ModelParams::default(),
        &ExploreLimits::default(),
        &cfg,
    );
    assert!(
        !resumed.stats.truncated,
        "{what}: resume must complete ({:?})",
        resumed.stats.store_error
    );
    // After a crash, counts may legitimately overcount re-expanded
    // states; the finals — the model's verdict — are the pin.
    assert!(
        reference.finals == resumed.finals,
        "{what}: finals after death-checkpoint resume diverged ({} vs {})",
        reference.finals.len(),
        resumed.finals.len()
    );
    assert!(
        !ck.exists(),
        "{what}: completion must delete the checkpoint"
    );
}

/// A dropped frame: the per-direction sequence numbers expose the gap
/// on the worker's next message, the link is declared lost, and the
/// run degrades to truncated + `store_error` with a resumable
/// checkpoint — never a silent pass with missing states.
#[test]
fn fault_dropped_frame_truncates_with_resumable_checkpoint() {
    let (got, cfg, _ck) = faulted_mp_run("drop-route:1", None, None, "drop");
    assert_lossy_fault_degrades_then_resumes("drop-route:1", &got, cfg);
}

/// A frame cut off mid-write (worker aborts halfway through a length-
/// prefixed frame — a crashed machine or severed link): the reader
/// sees a short read, the link is lost, the run degrades loudly and
/// resumably.
#[test]
fn fault_truncated_frame_truncates_with_resumable_checkpoint() {
    let (got, cfg, _ck) = faulted_mp_run("truncate-route:1", None, None, "trunc");
    assert_lossy_fault_degrades_then_resumes("truncate-route:1", &got, cfg);
}

/// A muted peer: after its first messages the worker swallows every
/// write — including heartbeats — while staying connected and reading
/// (a hung process or one-way partition; EOF never fires). The
/// dead-peer timeout must flag it within the configured window: the
/// run ends truncated + `store_error`, quickly, never hanging.
#[test]
fn fault_stalled_heartbeat_detected_no_hang() {
    let t0 = Instant::now();
    let (got, cfg, _ck) = faulted_mp_run("mute:2", Some(300), Some(1500), "mute");
    let elapsed = t0.elapsed();
    assert!(
        elapsed.as_secs() < 30,
        "dead-peer detection took {elapsed:?} — the heartbeat timeout is not working"
    );
    assert_lossy_fault_degrades_then_resumes("mute:2", &got, cfg);
}

/// A delayed probe reply (800 ms of injected latency on the exact
/// message the termination detector depends on): the epoch-tagged
/// probe rounds must absorb it — the stale/late reply can delay
/// termination but never corrupt it. Untruncated, byte-identical.
#[test]
fn fault_delayed_probe_reply_is_absorbed() {
    let reference = sequential_reference(
        library_source("MP"),
        &ModelParams::default(),
        &ExploreLimits::default(),
    );
    let (got, _cfg, ck) = faulted_mp_run("delay-probe:1:800", None, None, "dprobe");
    assert_identical("MP", "tcp+delay-probe", &reference, &got);
    assert!(!ck.exists(), "clean completion must delete the checkpoint");
}

/// A delayed data frame (400 ms on a routed batch): pure latency, no
/// loss — the run must stay untruncated and byte-identical.
#[test]
fn fault_delayed_frame_is_absorbed() {
    let reference = sequential_reference(
        library_source("MP"),
        &ModelParams::default(),
        &ExploreLimits::default(),
    );
    let (got, _cfg, ck) = faulted_mp_run("delay-route:2:400", None, None, "droute");
    assert_identical("MP", "tcp+delay-route", &reference, &got);
    assert!(!ck.exists(), "clean completion must delete the checkpoint");
}

/// A killed worker over TCP (same `DIE_AFTER` abort as the Unix-socket
/// suite): truncated + `store_error` + resumable death checkpoint.
#[test]
fn fault_killed_worker_over_tcp_resumes() {
    let tmp = std::env::temp_dir().join(format!("ppcmem-tcp-kill-{}", std::process::id()));
    let _ = std::fs::remove_file(&tmp);
    let mut cfg = tcfg(2);
    cfg.checkpoint = Some(tmp.clone());
    cfg.worker_env = vec![(DIE_AFTER_ENV.to_owned(), "40".to_owned())];
    let got = outcomes_distributed(
        library_source("MP"),
        &ModelParams::default(),
        &ExploreLimits::default(),
        &cfg,
    );
    assert_lossy_fault_degrades_then_resumes("die-after:40", &got, cfg);
}

/// Chaos sweep: random programs × random faults from the full grammar.
/// The invariant under chaos is exactly "no silent pass": a run that
/// reports untruncated must be byte-identical to the sequential
/// engine (the fault either never fired or was pure latency); a run
/// that truncates must say why in `store_error`. Lossy faults must
/// fire on at least one iteration, or the sweep lost its teeth.
#[test]
fn chaos_random_faults_never_silently_pass() {
    let iters = env_u64("DISTRIB_TCP_CHAOS_ITERS", 6);
    let seed0 = env_u64("DISTRIB_TCP_FUZZ_SEED", 0x7C9_0D15_7AB1_E001).wrapping_add(0x1000);
    let budget = env_u64("DISTRIB_TCP_FUZZ_BUDGET", 60_000) as usize;
    let faults: &[(&str, bool)] = &[
        ("drop-route:1", true),
        ("truncate-route:2", true),
        ("mute:3", true),
        ("delay-route:1:100", false),
        ("delay-probe:1:150", false),
    ];
    let limits = ExploreLimits {
        max_states: budget,
        ..ExploreLimits::default()
    };
    let params = ModelParams::default();
    let mut fired = 0usize;
    for i in 0..iters {
        let seed = seed0.wrapping_add(i);
        let prog = gen_program(seed);
        let reference = sequential_reference(&prog.source, &params, &limits);
        if reference.stats.truncated {
            continue;
        }
        // Deterministic fault choice per seed — reproducible without a
        // clock and uncorrelated with the program generator.
        let (fault, lossy) = faults[(seed % faults.len() as u64) as usize];
        let mut cfg = tcfg(2);
        cfg.worker_env = vec![(FAULT_ENV.to_owned(), fault.to_owned())];
        if fault.starts_with("mute") {
            cfg.heartbeat_ms = Some(300);
            cfg.peer_timeout_ms = Some(1500);
        }
        let got = outcomes_distributed(&prog.source, &params, &limits, &cfg);
        let what = format!("seed {seed:#018x} fault {fault}\n{}", prog.source);
        if got.stats.truncated {
            assert!(
                lossy,
                "{what}: a pure-latency fault must never truncate ({:?})",
                got.stats.store_error
            );
            assert!(
                got.stats.store_error.is_some(),
                "{what}: truncation without a store_error is a silent failure"
            );
            fired += 1;
        } else {
            // Untruncated under chaos ⇒ provably unharmed: small
            // explorations can finish before a lossy fault's Nth
            // message ever exists, and latency faults are absorbed by
            // design — either way the result must be byte-identical.
            assert_identical(&what, "tcp-chaos", &reference, &got);
        }
    }
    assert!(
        fired > 0,
        "no lossy fault ever fired across {iters} chaos iterations — \
         the sweep is not exercising the degradation paths"
    );
}

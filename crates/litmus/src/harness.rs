//! The batch litmus-conformance harness: run a whole suite of
//! [`LitmusEntry`]s in parallel against the exhaustive oracle, with
//! per-test budgets, and report every verdict against its paper/hardware
//! expectation.
//!
//! This is the repo's standing test oracle: the §7 concurrent validation
//! ("we ran the tool on a library of litmus tests...comparing the model
//! verdicts against the architectural intent") packaged as a reusable
//! engine. Tests are distributed over a worker pool (test-level
//! parallelism composes with the oracle's own work-stealing parallelism
//! via [`ModelParams::threads`], with the per-test exploration thread
//! budget clamped by [`HarnessConfig::inner_threads_for`] so the two
//! layers never oversubscribe the machine); each test gets a state
//! budget and
//! an optional wall-clock deadline, and a truncated exploration is
//! reported as *inconclusive* rather than silently counted as a pass.

use crate::library::LitmusEntry;
use crate::run::run_limited;
use crate::test::{Expectation, LitmusTest};
use ppc_model::{ExploreLimits, ModelParams};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One unit of oracle work as a *reusable value*: everything needed to
/// run a litmus program through the exhaustive oracle and report the
/// verdict, owned rather than borrowed from a `&'static` library table.
///
/// The CLI binaries historically drove the harness straight from
/// [`LitmusEntry`] (static library rows); a job decouples the harness
/// from where the program came from — a library row, a file handed to
/// `oracle-client`, bytes off an `oracled` socket — so the same
/// machinery serves all frontends (`ppc_service` builds its
/// content-addressed cache keys from exactly this value).
#[derive(Clone, Debug)]
pub struct Job {
    /// Test name (reported; part of the result record).
    pub name: String,
    /// Which part of the paper/validation (or which submitter) pins the
    /// expectation.
    pub pinned_by: String,
    /// The expectation the verdict is compared against. Ad-hoc
    /// submissions without an architectural expectation conventionally
    /// use [`Expectation::Allowed`], making `match` read as "was the
    /// condition witnessed".
    pub expect: Expectation,
    /// The original `.litmus` source (retained because distributed
    /// workers re-parse it locally).
    pub source: String,
    /// The parsed test (parse once, run many).
    pub test: LitmusTest,
}

impl Job {
    /// Build a job from a library entry.
    ///
    /// # Panics
    ///
    /// Panics if the entry's source fails to parse (library sources are
    /// fixed).
    #[must_use]
    pub fn from_entry(entry: &LitmusEntry) -> Job {
        let test = crate::parse(entry.source).expect("library test parses");
        Job {
            name: entry.name.to_owned(),
            pinned_by: entry.pinned_by.to_owned(),
            expect: entry.expect,
            source: entry.source.to_owned(),
            test,
        }
    }

    /// Build a job from raw litmus source (the `oracled` / client path).
    /// The job's name is the test's own header name.
    ///
    /// # Errors
    ///
    /// Returns the parse error for malformed source.
    pub fn from_source(
        source: &str,
        expect: Expectation,
        pinned_by: &str,
    ) -> Result<Job, crate::ParseError> {
        let test = crate::parse(source)?;
        Ok(Job {
            name: test.name.clone(),
            pinned_by: pinned_by.to_owned(),
            expect,
            source: source.to_owned(),
            test,
        })
    }
}

/// Configuration for a harness run.
#[derive(Clone, Debug, Default)]
pub struct HarnessConfig {
    /// Model parameters for every test. `params.threads` is the *inner*
    /// (per-exploration) parallelism — keep it at 1 when `jobs` already
    /// saturates the machine — `params.max_states` is the per-test
    /// distinct-state budget, and `params.max_resident_states` is the
    /// per-test *resident-state* (memory) budget: each exploration keeps
    /// at most that many decoded frontier states in memory, spilling
    /// overflow to temp files through the canonical state codec, so a
    /// whole run's frontier memory is bounded by
    /// `pool × max_resident_states × sizeof(state)` regardless of how
    /// big the individual state spaces grow (`0` = unlimited).
    pub params: ModelParams,
    /// Concurrent tests (`0` = one per available CPU).
    pub jobs: usize,
    /// Per-test wall-clock budget (soft; checked between search rounds).
    pub timeout_per_test: Option<Duration>,
    /// Worker *processes* per exploration (`0` = in-process engines).
    /// When non-zero each test runs on the distributed oracle
    /// ([`crate::distrib`]): the harness binary re-executes itself as
    /// the workers, so its `main` must call
    /// [`crate::distrib::maybe_run_worker`] first.
    pub distributed: usize,
    /// Run distributed explorations over loopback TCP instead of Unix
    /// sockets (exercises the multi-machine wire path; ignored when
    /// `distributed` is `0`).
    pub tcp: bool,
}

impl HarnessConfig {
    /// The effective number of concurrent tests.
    #[must_use]
    pub fn effective_jobs(&self) -> usize {
        ppc_model::resolve_threads(self.jobs)
    }

    /// The number of concurrent tests a suite of `entries` tests
    /// actually runs with — the pool never spawns more workers than
    /// there are tests.
    #[must_use]
    pub fn pool_size(&self, entries: usize) -> usize {
        self.effective_jobs().min(entries).max(1)
    }

    /// The per-test exploration thread budget when `pool` tests run
    /// concurrently: the configured `params.threads`, clamped so that
    /// `pool × threads` workers never oversubscribe the machine.
    /// Test-level parallelism is strictly more efficient than
    /// intra-exploration parallelism — tests are independent, so there
    /// is no shared visited set or stealing traffic — so when the two
    /// layers compete for cores the test pool wins and each exploration
    /// falls back toward the sequential engine (always keeping at least
    /// one worker). With a single concurrent test there is no
    /// competition, so an explicitly requested thread count is honoured
    /// as-is (e.g. `--jobs 1 --model-threads 4` drives the
    /// work-stealing engine even on a 1-CPU host, where it is the only
    /// way to exercise that engine through the harness). The clamp uses
    /// the *actual* pool size, not the configured job count, so a small
    /// suite on a big machine keeps its exploration parallelism instead
    /// of idling the spare cores.
    #[must_use]
    pub fn inner_threads_for(&self, pool: usize) -> usize {
        let want = self.params.effective_threads();
        if pool <= 1 {
            return want;
        }
        let cpus = ppc_model::resolve_threads(0);
        want.min((cpus / pool).max(1))
    }
}

/// One test's outcome in a harness run — the machine-readable row of the
/// conformance report.
#[derive(Clone, Debug, PartialEq)]
pub struct TestReport {
    /// Test name.
    pub name: String,
    /// Which part of the paper/validation pins the expectation.
    pub pinned_by: String,
    /// The paper/hardware expectation.
    pub expected: Expectation,
    /// The model's verdict for the `exists` condition.
    pub model_allows: bool,
    /// Whether the verdict matches the expectation.
    pub matches: bool,
    /// Whether the exploration hit its state budget or deadline. A
    /// truncated, unwitnessed run is *inconclusive*, not a pass.
    pub truncated: bool,
    /// Distinct observable final states.
    pub finals: usize,
    /// Distinct states visited.
    pub states: usize,
    /// Transitions fired.
    pub transitions: usize,
    /// Peak decoded frontier states resident in memory during the
    /// exploration (softly bounded by the configured
    /// `max_resident_states` when spilling is enabled).
    pub resident_peak: usize,
    /// Whether the exploration ran under a context-switch bound that
    /// actually suppressed at least one successor. A bounded run is an
    /// explicit approximation: like truncation, an unwitnessed verdict
    /// is *inconclusive*, never presented as an exhaustive "Forbidden".
    pub bounded: bool,
    /// Frontier states that round-tripped through disk (spill-to-disk
    /// traffic; `0` when `max_resident_states` is unlimited or never
    /// exceeded).
    pub spilled: usize,
    /// Distributed worker processes the exploration ran on (`0` = the
    /// in-process engines).
    pub workers: usize,
    /// Wall-clock time for the exploration.
    pub wall: Duration,
}

impl TestReport {
    /// Whether the run fully decided the verdict: either the state space
    /// was exhausted (neither truncated nor context-bounded), or a
    /// witness was found (a witness is definitive even in a truncated
    /// or bounded run).
    #[must_use]
    pub fn conclusive(&self) -> bool {
        (!self.truncated && !self.bounded) || self.model_allows
    }

    /// The model verdict as the conventional litmus word.
    #[must_use]
    pub fn verdict(&self) -> &'static str {
        if self.model_allows {
            "Allowed"
        } else {
            "Forbidden"
        }
    }

    /// One JSON object (a single line, suitable for JSONL reports).
    ///
    /// Schema evolution is *additive only*: existing fields keep their
    /// names and order (`resident_peak` was appended in the spill-store
    /// change, `bounded` in the context-bounding change, and
    /// `spilled`/`workers` in the distributed-oracle change; everything
    /// before `resident_peak` is bit-for-bit the PR 2 schema).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"expected\":\"{}\",\"model\":\"{}\",\"match\":{},\"conclusive\":{},\"truncated\":{},\"states\":{},\"transitions\":{},\"finals\":{},\"wall_ms\":{:.3},\"pinned_by\":{},\"resident_peak\":{},\"bounded\":{},\"spilled\":{},\"workers\":{}}}",
            json_str(&self.name),
            self.expected,
            self.verdict(),
            self.matches,
            self.conclusive(),
            self.truncated,
            self.states,
            self.transitions,
            self.finals,
            self.wall.as_secs_f64() * 1e3,
            json_str(&self.pinned_by),
            self.resident_peak,
            self.bounded,
            self.spilled,
            self.workers,
        )
    }

    /// Parse one line of a JSONL conformance report back into a
    /// [`TestReport`] — the inverse of [`TestReport::to_json`], used by
    /// downstream tooling and by the schema-stability round-trip test.
    /// Every field of the schema
    /// (`name`/`expected`/`model`/`match`/`conclusive`/`truncated`/
    /// `states`/`transitions`/`finals`/`wall_ms`/`pinned_by`/
    /// `resident_peak`/`bounded`/`spilled`/`workers`) must be present,
    /// and the redundant
    /// `conclusive` field must agree with the value derived from
    /// `truncated`, `bounded`, and `model` — a disagreement means the
    /// producer and consumer have drifted.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn from_json_line(line: &str) -> Result<TestReport, String> {
        let fields = parse_flat_object(line)?;
        let get = |key: &str| -> Result<&str, String> {
            fields
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| *v)
                .ok_or_else(|| format!("missing `{key}`"))
        };
        let get_str = |key: &str| -> Result<String, String> {
            let raw = get(key)?;
            let inner = raw
                .strip_prefix('"')
                .and_then(|r| r.strip_suffix('"'))
                .ok_or_else(|| format!("`{key}` is not a JSON string"))?;
            json_unescape(inner).ok_or_else(|| format!("`{key}` is not a JSON string"))
        };
        let get_bool = |key: &str| -> Result<bool, String> {
            match get(key)? {
                "true" => Ok(true),
                "false" => Ok(false),
                v => Err(format!("`{key}` is not a bool: `{v}`")),
            }
        };
        let get_usize = |key: &str| -> Result<usize, String> {
            get(key)?
                .parse()
                .map_err(|_| format!("`{key}` is not an integer"))
        };
        let expected = match get_str("expected")?.as_str() {
            "Allowed" => Expectation::Allowed,
            "Forbidden" => Expectation::Forbidden,
            other => return Err(format!("unknown expectation `{other}`")),
        };
        let model_allows = match get_str("model")?.as_str() {
            "Allowed" => true,
            "Forbidden" => false,
            other => return Err(format!("unknown model verdict `{other}`")),
        };
        let wall_ms: f64 = get("wall_ms")?
            .parse()
            .map_err(|_| "`wall_ms` is not a number".to_owned())?;
        let report = TestReport {
            name: get_str("name")?,
            pinned_by: get_str("pinned_by")?,
            expected,
            model_allows,
            matches: get_bool("match")?,
            truncated: get_bool("truncated")?,
            finals: get_usize("finals")?,
            states: get_usize("states")?,
            transitions: get_usize("transitions")?,
            resident_peak: get_usize("resident_peak")?,
            bounded: get_bool("bounded")?,
            spilled: get_usize("spilled")?,
            workers: get_usize("workers")?,
            wall: Duration::from_secs_f64(wall_ms / 1e3),
        };
        let conclusive = get_bool("conclusive")?;
        if conclusive != report.conclusive() {
            return Err(format!(
                "`conclusive` field ({conclusive}) disagrees with the value derived \
                 from `truncated`/`bounded`/`model` ({})",
                report.conclusive()
            ));
        }
        Ok(report)
    }
}

/// Index of the closing quote in `s`, which starts just *after* an
/// opening quote; escaped characters are skipped.
fn scan_string(s: &str) -> Result<usize, String> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Ok(i),
            _ => i += 1,
        }
    }
    Err("unterminated string".to_owned())
}

/// Tokenize a single-line *flat* JSON object (string and scalar values
/// only — the report schema has no nested containers) into its
/// `key → raw value` pairs. String values keep their surrounding quotes
/// and interior escapes; scalars are the trimmed literal text.
///
/// Unlike a per-key substring scan, one structural pass rejects what a
/// scan silently tolerates: duplicate keys (a scan reads whichever
/// comes first and masks a corrupted or maliciously doubled line),
/// trailing garbage after the closing brace (e.g. two records glued
/// onto one line by a broken appender), and key-lookalike text inside
/// string values. Unknown keys are fine — the schema is additive.
fn parse_flat_object(line: &str) -> Result<Vec<(&str, &str)>, String> {
    let rest = line.trim();
    let mut rest = rest
        .strip_prefix('{')
        .ok_or_else(|| "not a JSON object (missing `{`)".to_owned())?
        .trim_start();
    let mut fields: Vec<(&str, &str)> = Vec::new();
    let check_tail = |tail: &str| -> Result<(), String> {
        let tail = tail.trim();
        if tail.is_empty() {
            Ok(())
        } else {
            Err(format!("trailing garbage after closing `}}`: `{tail}`"))
        }
    };
    if let Some(tail) = rest.strip_prefix('}') {
        check_tail(tail)?;
        return Ok(fields);
    }
    loop {
        let after_quote = rest
            .strip_prefix('"')
            .ok_or_else(|| "expected a quoted key".to_owned())?;
        let kend = scan_string(after_quote)?;
        let key = &after_quote[..kend];
        if fields.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate key `{key}`"));
        }
        rest = after_quote[kend + 1..]
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| format!("missing `:` after key `{key}`"))?
            .trim_start();
        let value;
        if rest.starts_with('"') {
            let vend = scan_string(&rest[1..])?;
            value = &rest[..vend + 2]; // quotes included
            rest = rest[vend + 2..].trim_start();
        } else {
            let end = rest
                .find([',', '}'])
                .ok_or_else(|| format!("unterminated value for key `{key}`"))?;
            value = rest[..end].trim();
            if value.is_empty() {
                return Err(format!("empty value for key `{key}`"));
            }
            rest = &rest[end..];
        }
        fields.push((key, value));
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
            continue;
        }
        let tail = rest
            .strip_prefix('}')
            .ok_or_else(|| format!("expected `,` or `}}` after value for key `{key}`"))?;
        check_tail(tail)?;
        return Ok(fields);
    }
}

/// Decode the escapes produced by [`json_str`] (the exact inverse: the
/// reports only ever contain `\"`, `\\`, `\n`, `\t`, and `\uXXXX`).
fn json_unescape(raw: &str) -> Option<String> {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            't' => out.push('\t'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                let v = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(v)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The aggregate result of a harness run.
#[derive(Clone, Debug)]
pub struct HarnessReport {
    /// Per-test reports, in suite order.
    pub reports: Vec<TestReport>,
    /// Total wall-clock for the whole run.
    pub wall: Duration,
}

impl HarnessReport {
    /// Tests whose conclusive verdict contradicts the expectation.
    #[must_use]
    pub fn mismatches(&self) -> Vec<&TestReport> {
        self.reports
            .iter()
            .filter(|r| r.conclusive() && !r.matches)
            .collect()
    }

    /// Tests whose exploration was truncated without finding a witness
    /// (inconclusive; listed explicitly, never silently passed).
    #[must_use]
    pub fn inconclusive(&self) -> Vec<&TestReport> {
        self.reports.iter().filter(|r| !r.conclusive()).collect()
    }

    /// Whether every test ran to a conclusive, matching verdict.
    #[must_use]
    pub fn all_conclusive_matches(&self) -> bool {
        self.reports.iter().all(|r| r.conclusive() && r.matches)
    }

    /// The whole report as JSON lines, one test per line.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for r in &self.reports {
            s.push_str(&r.to_json());
            s.push('\n');
        }
        s
    }

    /// A one-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let total = self.reports.len();
        let matched = self
            .reports
            .iter()
            .filter(|r| r.conclusive() && r.matches)
            .count();
        let inconclusive = self.inconclusive().len();
        let mismatched = self.mismatches().len();
        format!(
            "{total} tests: {matched} match, {mismatched} mismatch, {inconclusive} inconclusive ({:.1}s)",
            self.wall.as_secs_f64()
        )
    }
}

/// Run a whole suite through the exhaustive oracle on a worker pool.
///
/// Entries are claimed off a shared counter, so long tests don't strand
/// idle workers; the report preserves suite order regardless of
/// completion order.
#[must_use]
pub fn run_suite(entries: &[LitmusEntry], cfg: &HarnessConfig) -> HarnessReport {
    let jobs: Vec<Job> = entries.iter().map(Job::from_entry).collect();
    run_suite_jobs(&jobs, cfg)
}

/// [`run_suite`] over pre-built [`Job`]s (the reusable-value form every
/// frontend shares).
#[must_use]
pub fn run_suite_jobs(suite: &[Job], cfg: &HarnessConfig) -> HarnessReport {
    let t0 = Instant::now();
    let pool = cfg.pool_size(suite.len());
    let inner_threads = cfg.inner_threads_for(pool);
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<TestReport>>> = Mutex::new(vec![None; suite.len()]);

    std::thread::scope(|s| {
        for _ in 0..pool {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = suite.get(i) else { break };
                let report = run_job_with_threads(job, cfg, inner_threads);
                slots.lock().expect("report slots poisoned")[i] = Some(report);
            });
        }
    });

    let reports = slots
        .into_inner()
        .expect("report slots poisoned")
        .into_iter()
        .map(|r| r.expect("every entry produced a report"))
        .collect();
    HarnessReport {
        reports,
        wall: t0.elapsed(),
    }
}

/// Run a single entry under the harness budgets (state budget and
/// deadline from the config). A lone test has no pool to share the
/// machine with, so the configured exploration thread count is used
/// as-is; inside [`run_suite`] the thread budget is clamped by
/// [`HarnessConfig::inner_threads_for`] instead, so the test pool and
/// the oracle's work-stealing workers share the machine rather than
/// fighting over it.
#[must_use]
pub fn run_one(entry: &LitmusEntry, cfg: &HarnessConfig) -> TestReport {
    run_job(&Job::from_entry(entry), cfg)
}

/// [`run_one`] over a pre-built [`Job`].
#[must_use]
pub fn run_job(job: &Job, cfg: &HarnessConfig) -> TestReport {
    run_job_with_threads(job, cfg, cfg.inner_threads_for(1))
}

/// [`run_job`] with an explicit exploration thread budget (the
/// suite-level clamp already resolved by the caller).
fn run_job_with_threads(job: &Job, cfg: &HarnessConfig, threads: usize) -> TestReport {
    let limits = ExploreLimits {
        threads,
        deadline: cfg.timeout_per_test.map(|t| Instant::now() + t),
        ..ExploreLimits::from_params(&cfg.params)
    };
    let t0 = Instant::now();
    let result = if cfg.distributed > 0 {
        crate::distrib::run_source_distributed(
            &job.source,
            &cfg.params,
            &limits,
            &crate::distrib::DistribConfig {
                workers: cfg.distributed,
                launch: if cfg.tcp {
                    crate::distrib::WorkerLaunch::TcpLoopback
                } else {
                    crate::distrib::WorkerLaunch::Unix
                },
                ..crate::distrib::DistribConfig::default()
            },
        )
    } else {
        run_limited(&job.test, &cfg.params, &limits)
    };
    let wall = t0.elapsed();
    let model_allows = result.witnessed;
    let matches = match job.expect {
        Expectation::Allowed => model_allows,
        Expectation::Forbidden => !model_allows,
    };
    TestReport {
        name: job.name.clone(),
        pinned_by: job.pinned_by.clone(),
        expected: job.expect,
        model_allows,
        matches,
        truncated: result.stats.truncated,
        finals: result.finals,
        states: result.stats.states,
        transitions: result.stats.transitions,
        resident_peak: result.stats.resident_peak,
        bounded: result.stats.bounded,
        spilled: result.stats.spilled_states,
        workers: cfg.distributed,
        wall,
    }
}

//! A small deterministic PRNG for test generation and property tests.
//!
//! The workspace is dependency-free, so instead of `rand` we use a
//! SplitMix64 generator: statistically strong enough for test-state
//! generation, trivially seedable, and — critically for the §7
//! conformance experiments — fully reproducible from a `u64` seed across
//! platforms and releases.

use std::ops::Range;

/// A SplitMix64 pseudo-random generator (Steele, Lea & Flood 2014).
#[derive(Clone, Debug)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Seed the generator. Equal seeds give equal streams, forever.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        Prng { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniformly random value of a primitive integer (or `bool`) type.
    pub fn gen<T: FromPrng>(&mut self) -> T {
        T::from_prng(self)
    }

    /// A uniformly random value in the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T: PrngRange>(&mut self, range: Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }
}

/// Types producible directly from the raw PRNG stream.
pub trait FromPrng {
    /// Draw one value.
    fn from_prng(rng: &mut Prng) -> Self;
}

macro_rules! impl_from_prng {
    ($($t:ty),*) => {$(
        impl FromPrng for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn from_prng(rng: &mut Prng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_from_prng!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromPrng for bool {
    fn from_prng(rng: &mut Prng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types samplable from a half-open range.
pub trait PrngRange: Sized {
    /// Draw a value in `lo..hi`.
    fn sample(rng: &mut Prng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_prng_range {
    ($($t:ty),*) => {$(
        impl PrngRange for $t {
            #[allow(
                clippy::cast_possible_truncation,
                clippy::cast_possible_wrap,
                clippy::cast_sign_loss,
                clippy::cast_lossless
            )]
            fn sample(rng: &mut Prng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo with a 64-bit draw: the bias is < 2^-64 * span,
                // irrelevant for test generation.
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_prng_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod rng_tests {
    use super::Prng;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = Prng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(0..6u8);
            assert!(v < 6);
            let s = r.gen_range(-0x8000..0x8000i64);
            assert!((-0x8000..0x8000).contains(&s));
            let w = r.gen_range(5..6u32);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn bool_and_widths() {
        let mut r = Prng::seed_from_u64(9);
        let mut seen_true = false;
        let mut seen_false = false;
        for _ in 0..64 {
            if r.gen::<bool>() {
                seen_true = true;
            } else {
                seen_false = true;
            }
        }
        assert!(seen_true && seen_false);
    }
}

//! Shared random-litmus-program generator for the differential fuzz
//! suites (`oracle_fuzz` pins work-stealing vs sequential, `spill_oracle`
//! pins spill-to-disk vs in-memory). One generator, one program shape
//! per seed, however many engine configurations check it.

#![allow(dead_code)] // each test binary uses a subset of the helpers

use ppcmem::bits::Prng;
use ppcmem::idl::Reg;

/// Shared memory locations the generator draws from.
pub const LOC_NAMES: [&str; 3] = ["x", "y", "z"];

/// Barrier menu (everything the front end accepts that reaches the
/// model: full sync, lwsync, eieio, and the execution barrier isync).
pub const BARRIERS: [&str; 4] = ["sync", "lwsync", "eieio", "isync"];

/// One generated litmus program plus the observation footprint the
/// differential check explores with.
pub struct GenProgram {
    /// The `.litmus` source text (fed through the real parser, so the
    /// fuzzer also exercises the front end).
    pub source: String,
    /// Every load destination register, by thread.
    pub reg_obs: Vec<(usize, Reg)>,
}

/// Generate one random program from `seed`.
///
/// Shapes are kept small enough that exhaustive exploration stays in
/// CI-friendly territory: thread counts are weighted toward 2–3, and
/// per-thread operation counts shrink as the thread count grows (the
/// state space is roughly exponential in total operations).
///
/// The op menu covers plain loads/stores, barriers,
/// address/data/control dependencies, and — so the differential fuzzers
/// finally reach the reservation machinery in `thread.rs`/`system.rs` —
/// `lwarx`/`stwcx.` read-modify-write pairs (the loaded value is
/// observed, and the store-conditional's success/failure branching is
/// part of the explored envelope).
pub fn gen_program(seed: u64) -> GenProgram {
    let mut rng = Prng::seed_from_u64(seed);
    let nthreads: usize = [2, 2, 2, 3, 3, 4][rng.gen_range(0..6usize)];
    let nlocs: usize = rng.gen_range(2..4usize);
    // The state space is roughly exponential in the *total* number of
    // memory operations, so the generator budgets operations across the
    // whole program (3 or 4), not per thread: every thread gets at least
    // one, the surplus lands at random (capped at 3 per thread).
    let total_ops = (3 + rng.gen_range(0..2usize)).max(nthreads);
    let mut ops_of = vec![1usize; nthreads];
    let mut surplus = total_ops.saturating_sub(nthreads);
    while surplus > 0 {
        let t = rng.gen_range(0..nthreads);
        if ops_of[t] < 3 {
            ops_of[t] += 1;
            surplus -= 1;
        }
    }

    let mut reg_obs: Vec<(usize, Reg)> = Vec::new();
    let mut threads: Vec<Vec<String>> = Vec::new();
    for (tid, &nops) in ops_of.iter().enumerate() {
        let mut lines: Vec<String> = Vec::new();
        // r1..r{nlocs} hold location addresses; fresh value registers
        // are allocated from r4 up (r0 is avoided: it reads as zero in
        // D-form addressing).
        let mut next_reg: u8 = 4;
        let mut alloc = || {
            let r = next_reg;
            next_reg += 1;
            r
        };
        // Destination of the most recent load, for dependency ops.
        let mut last_load: Option<u8> = None;
        for op in 0..nops {
            let loc_reg = 1 + rng.gen_range(0..nlocs as u8);
            let kind = rng.gen_range(0..12u32);
            match kind {
                // Plain store of a small constant.
                0..=2 => {
                    let rc = alloc();
                    let k = rng.gen_range(1..3u64);
                    lines.push(format!("li r{rc},{k}"));
                    lines.push(format!("stw r{rc},0(r{loc_reg})"));
                }
                // Plain load.
                3..=5 => {
                    let rd = alloc();
                    lines.push(format!("lwz r{rd},0(r{loc_reg})"));
                    last_load = Some(rd);
                    reg_obs.push((tid, Reg::Gpr(rd)));
                }
                // A barrier.
                6 => {
                    lines.push(BARRIERS[rng.gen_range(0..BARRIERS.len())].to_owned());
                }
                // Address-dependent load (falls back to a plain load when
                // no prior load exists to depend on).
                7 => {
                    let rd = alloc();
                    if let Some(rp) = last_load {
                        let rt = alloc();
                        lines.push(format!("xor r{rt},r{rp},r{rp}"));
                        lines.push(format!("lwzx r{rd},r{loc_reg},r{rt}"));
                    } else {
                        lines.push(format!("lwz r{rd},0(r{loc_reg})"));
                    }
                    last_load = Some(rd);
                    reg_obs.push((tid, Reg::Gpr(rd)));
                }
                // Data-dependent store.
                8 => {
                    let rt = alloc();
                    let k = rng.gen_range(1..3u64);
                    if let Some(rp) = last_load {
                        lines.push(format!("xor r{rt},r{rp},r{rp}"));
                        lines.push(format!("addi r{rt},r{rt},{k}"));
                    } else {
                        lines.push(format!("li r{rt},{k}"));
                    }
                    lines.push(format!("stw r{rt},0(r{loc_reg})"));
                }
                // Control-dependent store (an always-taken compare/branch
                // off the last load, as in the MP+sync+ctrl family).
                9 => {
                    let rc = alloc();
                    let k = rng.gen_range(1..3u64);
                    if let Some(rp) = last_load {
                        let label = format!("LC{tid}x{op}");
                        lines.push(format!("cmpw r{rp},r{rp}"));
                        lines.push(format!("beq {label}"));
                        lines.push(format!("{label}:"));
                    }
                    lines.push(format!("li r{rc},{k}"));
                    lines.push(format!("stw r{rc},0(r{loc_reg})"));
                }
                // lwarx/stwcx. read-modify-write pair: load-reserve,
                // derive the stored value from the loaded one (a data
                // dependency through the reservation), store-conditional
                // back to the same location. Both the loaded value and
                // the success/failure branching land in the explored
                // envelope (the location is observed by the harnesses'
                // memory footprint).
                _ => {
                    let rd = alloc();
                    let rt = alloc();
                    let k = rng.gen_range(1..3u64);
                    lines.push(format!("lwarx r{rd},r0,r{loc_reg}"));
                    lines.push(format!("addi r{rt},r{rd},{k}"));
                    lines.push(format!("stwcx. r{rt},r0,r{loc_reg}"));
                    last_load = Some(rd);
                    reg_obs.push((tid, Reg::Gpr(rd)));
                }
            }
        }
        threads.push(lines);
    }

    // Init block: address registers for every thread, zeroed locations.
    let mut init = String::new();
    for tid in 0..nthreads {
        for (i, loc) in LOC_NAMES.iter().take(nlocs).enumerate() {
            init.push_str(&format!("{tid}:r{}={loc}; ", i + 1));
        }
        init.push('\n');
    }
    for loc in LOC_NAMES.iter().take(nlocs) {
        init.push_str(&format!("{loc}=0; "));
    }

    // Column-per-thread code table.
    let header: Vec<String> = (0..nthreads).map(|t| format!("P{t}")).collect();
    let mut table = format!(" {} ;\n", header.join(" | "));
    let rows = threads.iter().map(Vec::len).max().unwrap_or(0);
    for r in 0..rows {
        let cells: Vec<&str> = threads
            .iter()
            .map(|t| t.get(r).map_or("", String::as_str))
            .collect();
        table.push_str(&format!(" {} ;\n", cells.join(" | ")));
    }

    // A plausible exists-condition over the loaded registers (the
    // differential check observes the registers directly, but this keeps
    // the generated source a complete, parser-valid litmus test).
    let cond = if reg_obs.is_empty() {
        "exists (true)".to_owned()
    } else {
        let atoms: Vec<String> = reg_obs
            .iter()
            .map(|&(tid, reg)| {
                let Reg::Gpr(g) = reg else { unreachable!() };
                format!("{tid}:r{g}={}", rng.gen_range(0..3u64))
            })
            .collect();
        format!("exists ({})", atoms.join(" /\\ "))
    };

    GenProgram {
        source: format!("POWER FUZZ_{seed:016x}\n{{\n{init}\n}}\n{table}{cond}\n"),
        reg_obs,
    }
}

/// Whether the generated program contains a reservation pair (for
/// coverage accounting in the fuzz harnesses).
pub fn has_rmw(prog: &GenProgram) -> bool {
    prog.source.contains("lwarx")
}

/// Parse a `u64` environment knob, accepting `0x…` hex.
pub fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Err(_) => default,
        Ok(v) => {
            let v = v.trim();
            let parsed = v
                .strip_prefix("0x")
                .map_or_else(|| v.parse().ok(), |h| u64::from_str_radix(h, 16).ok());
            parsed.unwrap_or_else(|| panic!("{name}: unparseable value `{v}`"))
        }
    }
}

//! Cross-crate integration tests: the full pipeline from litmus/ELF
//! sources through the ISA model into the concurrency model and oracle.

use ppcmem::bits::Bv;
use ppcmem::elf::{parse_elf, ElfBuilder};
use ppcmem::idl::Reg;
use ppcmem::litmus::{parse, run, run_entry, Expectation};
use ppcmem::model::{explore, run_sequential, ModelParams, Program, SystemState};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The complete litmus pipeline: text → parse → assemble → explore →
/// condition check, for an allowed and a forbidden test.
#[test]
fn litmus_pipeline_end_to_end() {
    let allowed = r"POWER MP
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | lwz r5,0(r2) ;
 stw r8,0(r2) | lwz r4,0(r1) ;
exists (1:r5=1 /\ 1:r4=0)
";
    let t = parse(allowed).expect("parses");
    let r = run(&t, &ModelParams::default());
    assert!(r.witnessed);

    let forbidden = r"POWER MP+syncs
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | lwz r5,0(r2) ;
 sync         | sync         ;
 stw r8,0(r2) | lwz r4,0(r1) ;
exists (1:r5=1 /\ 1:r4=0)
";
    let t = parse(forbidden).expect("parses");
    let r = run(&t, &ModelParams::default());
    assert!(!r.witnessed);
}

// The paper's §2 suite is covered one-test-per-entry in
// `tests/conformance.rs`; the full library and generated families run
// through the batch harness there and in the `conformance` binary.

/// ELF pipeline: builder → reader → loader → sequential execution.
#[test]
fn elf_pipeline_end_to_end() {
    let code: Vec<ppcmem::isa::Instruction> = ["li r3,6", "mulli r3,r3,7"]
        .iter()
        .map(|s| ppcmem::isa::parse_asm(s).expect("asm"))
        .collect();
    let image = ElfBuilder::new(0x1000_0000)
        .text(0x1000_0000, &code)
        .build();
    let elf = parse_elf(&image).expect("parses");
    let program = Arc::new(Program::new(&elf.code_words()));
    let state = SystemState::new(
        program,
        vec![(BTreeMap::new(), elf.entry)],
        &[],
        ModelParams::default(),
    );
    let (fin, _) = run_sequential(&state, 1_000);
    assert_eq!(fin.threads[0].final_reg(Reg::Gpr(3)).to_u64(), Some(42));
}

/// The golden sequential machine and the model agree on a multi-
/// instruction program touching memory, flags, and branches.
#[test]
fn seqref_and_model_agree_on_program() {
    let code: Vec<ppcmem::isa::Instruction> = [
        "li r1,5",
        "mtctr r1",
        "li r2,0",
        "addi r2,r2,2",
        "bdnz -4",
        "cmpwi r2,10",
        "beq 8",
        "li r3,0",
        "li r3,1",
    ]
    .iter()
    .map(|s| ppcmem::isa::parse_asm(s).expect("asm"))
    .collect();

    let mut golden = ppcmem::seqref::SeqMachine::from_instrs(&code, 0x1_0000);
    golden.run(1_000).expect("golden runs");

    let program = Arc::new(Program::from_threads(&[(0x1_0000, code)]));
    let state = SystemState::new(
        program,
        vec![(BTreeMap::new(), 0x1_0000)],
        &[],
        ModelParams::default(),
    );
    let (fin, _) = run_sequential(&state, 10_000);
    for r in [Reg::Gpr(1), Reg::Gpr(2), Reg::Gpr(3), Reg::Ctr] {
        assert_eq!(
            golden.state.reg(r).to_u64(),
            fin.threads[0].final_reg(r).to_u64(),
            "register {r}"
        );
    }
    // The loop summed 2 five times, the compare took the taken path.
    assert_eq!(golden.state.reg(Reg::Gpr(2)).to_u64(), Some(10));
    assert_eq!(golden.state.reg(Reg::Gpr(3)).to_u64(), Some(1));
}

/// The generated litmus families carry coherent expectations (a sample
/// across each family runs correctly end-to-end).
#[test]
fn generated_family_sample_matches() {
    let params = ModelParams::default();
    let suite = ppcmem::litmus::generated_suite();
    for name in ["MP+po+po", "MP+sync+addr", "SB+sync+sync", "LB+addr+addr"] {
        let e = suite
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("{name} in generated suite"));
        let report = run_entry(e, &params);
        assert!(
            report.matches,
            "{name}: witnessed={} expected {}",
            report.result.witnessed, report.expect
        );
        // Cross-check the family rules give the classic verdicts.
        match name {
            "MP+po+po" => assert_eq!(e.expect, Expectation::Allowed),
            "MP+sync+addr" | "SB+sync+sync" | "LB+addr+addr" => {
                assert_eq!(e.expect, Expectation::Forbidden);
            }
            _ => {}
        }
    }
}

/// Mixed-size accesses: a doubleword store observed by word and byte
/// loads (the §5 mixed-size storage extension).
#[test]
fn mixed_size_reads_assemble_bytes() {
    let code: Vec<ppcmem::isa::Instruction> = [
        "std r5,0(r1)",
        "lwz r6,4(r1)",
        "lbz r7,7(r1)",
        "lhz r8,0(r1)",
    ]
    .iter()
    .map(|s| ppcmem::isa::parse_asm(s).expect("asm"))
    .collect();
    let program = Arc::new(Program::from_threads(&[(0x1_0000, code)]));
    let mut regs = BTreeMap::new();
    regs.insert(Reg::Gpr(1), Bv::from_u64(0x1000, 64));
    regs.insert(Reg::Gpr(5), Bv::from_u64(0x1122_3344_5566_7788, 64));
    let state = SystemState::new(
        program,
        vec![(regs, 0x1_0000)],
        &[(0x1000, Bv::from_u64(0, 64))],
        ModelParams::default(),
    );
    let (fin, _) = run_sequential(&state, 1_000);
    assert_eq!(
        fin.threads[0].final_reg(Reg::Gpr(6)).to_u64(),
        Some(0x5566_7788)
    );
    assert_eq!(fin.threads[0].final_reg(Reg::Gpr(7)).to_u64(), Some(0x88));
    assert_eq!(fin.threads[0].final_reg(Reg::Gpr(8)).to_u64(), Some(0x1122));
}

/// The exhaustive oracle and the Fig.3-style renderer work on the same
/// state (the renderer must not disturb or crash on mid-run states).
#[test]
fn renderer_smoke() {
    let t = parse(
        r"POWER R
{
0:r1=x; 0:r7=1;
x=0;
}
 P0           ;
 stw r7,0(r1) ;
exists (x=1)
",
    )
    .expect("parses");
    let state = ppcmem::litmus::build_system(&t, &ModelParams::default());
    let txt = state.render();
    assert!(txt.contains("Storage subsystem state"));
    assert!(txt.contains("Thread 0 state"));
    assert!(txt.contains("Enabled transitions"));
    let out = explore(&state, &[], &[(t.addr_of("x"), 4)]);
    assert_eq!(out.finals.len(), 1);
}

/// Enumeration-order stability: the renderer's numbered transition list,
/// `enumerate_transitions()`, and the flattened per-component
/// [`ppcmem::model::EnumTrace`] must all agree index-for-index, at every
/// state along a deterministic walk. An interactive driver reads an index
/// off `render()` and applies `enumerate_transitions()[k]`; if the two
/// paths ever ordered transitions differently the driver would silently
/// apply the wrong transition.
#[test]
fn enumeration_order_is_stable_across_render_and_engines() {
    let t = parse(
        r"POWER MP
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | lwz r5,0(r2) ;
 stw r8,0(r2) | lwz r4,0(r1) ;
exists (1:r5=1 /\ 1:r4=0)
",
    )
    .expect("parses");
    let mut state = ppcmem::litmus::build_system(&t, &ModelParams::default());
    let mut checked = 0usize;
    for _ in 0..32 {
        let ts = state.enumerate_transitions();
        // Flattened trace (threads in thread order, then storage) is the
        // same list the engines and the renderer consume.
        let (per_thread, storage) = state.enumerate_traced();
        let flat: Vec<_> = per_thread
            .iter()
            .flatten()
            .copied()
            .map(ppcmem::model::Transition::Thread)
            .chain(
                storage
                    .iter()
                    .copied()
                    .map(ppcmem::model::Transition::Storage),
            )
            .collect();
        assert_eq!(flat, ts, "trace order diverged from enumerate_transitions");
        // The rendered transition section must number exactly this list.
        let rendered = state.render();
        let section = rendered
            .split("Enabled transitions:\n")
            .nth(1)
            .expect("render emits a transition section");
        let lines: Vec<&str> = section.lines().filter(|l| !l.is_empty()).collect();
        assert_eq!(lines.len(), ts.len(), "renderer count differs");
        for (k, tr) in ts.iter().enumerate() {
            assert_eq!(
                lines[k],
                format!("  {k} {}", state.render_transition(tr)),
                "renderer numbering diverged at index {k}"
            );
        }
        checked += 1;
        let Some(first) = ts.first() else { break };
        state = state.apply(first);
    }
    assert!(checked > 8, "walk too short to pin ordering ({checked})");
}

//! The repo's standing conformance oracle: run the *entire* built-in
//! litmus library plus the generated systematic families through the
//! exhaustive-oracle harness, in parallel, and emit both a human table
//! and a machine-readable JSONL report.
//!
//! Usage:
//!
//! ```text
//! conformance [--jobs N] [--model-threads N] [--steal-batch N]
//!             [--max-states N] [--max-resident N] [--timeout-secs S]
//!             [--context-bound N] [--reduced] [--distributed N]
//!             [--cache DIR] [--expect-cached]
//!             [--json PATH] [--library-only] [--paper-only] [--quiet]
//! ```
//!
//! `--cache DIR` routes the sweep through the oracle service's
//! content-addressed result store (`crates/service`): each test's
//! canonical query key is probed first and only misses explore, so a
//! warm sweep performs *zero* explorations and its `--json` report is
//! byte-identical to the cold run's (hits re-serve the stored record
//! line verbatim). `--expect-cached` asserts the warm case — the run
//! fails if any exploration happened. Cache keys include every
//! envelope-affecting model parameter plus the codec/model versions,
//! so changing e.g. `--context-bound` never serves a stale record.
//!
//! `--max-resident N` bounds each exploration's in-memory frontier to N
//! decoded states (overflow spills to temp files through the canonical
//! state codec; `0` = unlimited), so total frontier memory is bounded by
//! `jobs × N × sizeof(state)` however big the state spaces get.
//!
//! `--distributed N` runs each exploration on N worker *processes*
//! (digest-partitioned visited set, shard-routed frontier batches —
//! `crates/model/src/distrib.rs`); the binary re-executes itself as
//! the workers. Verdicts and counts are byte-identical to the
//! in-process engines, so the exit policy is unchanged.
//!
//! `--reduced` turns on sleep-set partial-order reduction: the same
//! final-state verdicts (the POR differential pins this), fewer explored
//! states. `--context-bound N` caps each execution at N context
//! switches — an explicitly approximate fast tier: tests whose witness
//! needs more switches come back *inconclusive* (reported as `bounded`
//! in the JSONL), never as a conclusive "Forbidden".
//!
//! Exit status is non-zero if any conclusive verdict mismatches its
//! paper/hardware expectation, or any test was budget-truncated without
//! a witness (inconclusive results are listed, never silently passed).
//! Under `--context-bound`, bound-induced inconclusives are expected and
//! do not fail the run; only definitive mismatches (and actual budget
//! truncations) do.

use bench::args::{arg_value, check_flags, parse_arg, parse_nonzero_arg};
use ppc_litmus::harness::{run_suite, HarnessConfig, Job};
use ppc_litmus::{generated_suite, library, paper_section2_suite};
use ppc_model::ModelParams;
use ppc_service::Oracle;
use std::io::Write as _;
use std::time::Duration;

/// Flags taking a value (the next argument is consumed).
const VALUE_FLAGS: &[&str] = &[
    "--jobs",
    "--model-threads",
    "--steal-batch",
    "--max-states",
    "--max-resident",
    "--timeout-secs",
    "--context-bound",
    "--distributed",
    "--cache",
    "--json",
];
/// Boolean flags.
const BOOL_FLAGS: &[&str] = &[
    "--reduced",
    "--library-only",
    "--paper-only",
    "--quiet",
    "--tcp",
    "--expect-cached",
];

const USAGE: &str = "conformance [--jobs N] [--model-threads N] [--steal-batch N] \
     [--max-states N] [--max-resident N] [--timeout-secs S] [--context-bound N] \
     [--reduced] [--distributed N] [--tcp] [--cache DIR] [--expect-cached] \
     [--json PATH] [--library-only] [--paper-only] [--quiet]";

#[allow(clippy::too_many_lines)]
fn main() {
    // Under --distributed this binary re-executes itself as the worker
    // processes; a worker never returns from here.
    ppc_litmus::maybe_run_worker();
    let args: Vec<String> = std::env::args().skip(1).collect();
    check_flags("conformance", &args, VALUE_FLAGS, BOOL_FLAGS, USAGE);
    let jobs: usize = parse_arg("conformance", &args, "--jobs", 0);
    let model_threads: usize = parse_arg("conformance", &args, "--model-threads", 1);
    let steal_batch: usize = parse_nonzero_arg("conformance", &args, "--steal-batch", 0);
    let max_states: usize = parse_arg(
        "conformance",
        &args,
        "--max-states",
        ModelParams::DEFAULT_MAX_STATES,
    );
    let max_resident: usize = parse_arg("conformance", &args, "--max-resident", 0);
    let timeout_secs: u64 = parse_arg("conformance", &args, "--timeout-secs", 0);
    let context_bound: usize = parse_nonzero_arg("conformance", &args, "--context-bound", 0);
    let distributed: usize = parse_arg("conformance", &args, "--distributed", 0);
    let tcp = args.iter().any(|a| a == "--tcp");
    let reduced = args.iter().any(|a| a == "--reduced");
    let cache = arg_value(&args, "--cache");
    let expect_cached = args.iter().any(|a| a == "--expect-cached");
    let json_path = arg_value(&args, "--json");
    let quiet = args.iter().any(|a| a == "--quiet");
    if expect_cached && cache.is_none() {
        eprintln!("conformance: --expect-cached requires --cache DIR");
        std::process::exit(2);
    }

    let entries = if args.iter().any(|a| a == "--paper-only") {
        paper_section2_suite()
    } else if args.iter().any(|a| a == "--library-only") {
        library()
    } else {
        let mut v = library();
        v.extend(generated_suite());
        v
    };

    let cfg = HarnessConfig {
        params: ModelParams {
            threads: model_threads,
            steal_batch,
            max_states,
            max_resident_states: max_resident,
            sleep_sets: reduced,
            max_context_switches: context_bound,
            ..ModelParams::default()
        },
        jobs,
        timeout_per_test: if timeout_secs == 0 {
            None
        } else {
            Some(Duration::from_secs(timeout_secs))
        },
        distributed,
        tcp,
    };

    eprintln!(
        "conformance: {} tests, {} jobs × {} model threads (budgeted from {} requested), \
         {} state budget{}{}{}{}{}",
        entries.len(),
        cfg.pool_size(entries.len()),
        cfg.inner_threads_for(cfg.pool_size(entries.len())),
        cfg.params.effective_threads(),
        max_states,
        if max_resident == 0 {
            String::new()
        } else {
            format!(", {max_resident} resident states (spill-to-disk)")
        },
        if reduced { ", sleep-set reduction" } else { "" },
        if context_bound == 0 {
            String::new()
        } else {
            format!(", context bound {context_bound} (approximate tier)")
        },
        if distributed == 0 {
            String::new()
        } else {
            format!(
                ", {distributed} distributed worker processes{}",
                if tcp { " (loopback TCP)" } else { "" }
            )
        },
        cfg.timeout_per_test
            .map(|t| format!(", {}s timeout", t.as_secs()))
            .unwrap_or_default(),
    );
    // With --cache the sweep becomes a facade over the oracle service:
    // probe the content-addressed store per test, explore only misses.
    // Without it the harness runs directly, exactly as before.
    let (report, cached_jsonl, cache_stats) = if let Some(dir) = &cache {
        let oracle =
            Oracle::with_cache(cfg.clone(), std::path::Path::new(dir)).unwrap_or_else(|e| {
                eprintln!("conformance: cannot open cache {dir}: {e}");
                std::process::exit(1);
            });
        let jobs: Vec<Job> = entries.iter().map(Job::from_entry).collect();
        let cached = oracle.run_suite_cached(&jobs);
        let stats = oracle.stats();
        eprintln!(
            "conformance: cache {dir}: {} hits, {} misses, {} explorations, {} corrupt dropped",
            stats.hits, stats.misses, stats.explorations, stats.corrupt_dropped
        );
        let jsonl = cached.to_jsonl();
        (cached.report, Some(jsonl), Some(stats))
    } else {
        (run_suite(&entries, &cfg), None, None)
    };

    if !quiet {
        println!(
            "{:<22} {:>10} {:>10} {:>8} {:>10} {:>12} {:>8} {:>9}  pinned by",
            "test", "model", "expected", "match", "states", "transitions", "finals", "time(s)"
        );
        println!("{}", "-".repeat(120));
        for r in &report.reports {
            let status = if !r.conclusive() {
                if r.bounded && !r.truncated {
                    "BOUNDED"
                } else {
                    "TRUNC"
                }
            } else if r.matches {
                "ok"
            } else {
                "MISMATCH"
            };
            println!(
                "{:<22} {:>10} {:>10} {:>8} {:>10} {:>12} {:>8} {:>9.2}  {}",
                r.name,
                r.verdict(),
                r.expected.to_string(),
                status,
                r.states,
                r.transitions,
                r.finals,
                r.wall.as_secs_f64(),
                r.pinned_by
            );
        }
        println!("{}", "-".repeat(120));
    }
    println!("{}", report.summary());

    let mismatches = report.mismatches();
    let inconclusive = report.inconclusive();
    for r in &mismatches {
        println!(
            "MISMATCH: {} — model says {}, paper says {}",
            r.name,
            r.verdict(),
            r.expected
        );
    }
    for r in &inconclusive {
        if r.bounded && !r.truncated {
            println!(
                "INCONCLUSIVE: {} — context bound hit after {} states without a witness",
                r.name, r.states
            );
        } else {
            println!(
                "INCONCLUSIVE: {} — budget exhausted after {} states without a witness",
                r.name, r.states
            );
        }
    }

    if let Some(path) = json_path {
        // Cached runs write the record lines verbatim (byte-identical
        // between cold and warm sweeps); uncached runs serialize fresh.
        let jsonl = cached_jsonl.unwrap_or_else(|| report.to_jsonl());
        let mut f = std::fs::File::create(&path).expect("create JSON report file");
        f.write_all(jsonl.as_bytes()).expect("write JSON report");
        eprintln!("wrote {path}");
    }

    if expect_cached {
        let explorations = cache_stats.map_or(0, |s| s.explorations);
        if explorations != 0 {
            eprintln!(
                "conformance: --expect-cached violated: {explorations} explorations on a run \
                 that should have been fully served from the cache"
            );
            std::process::exit(1);
        }
        eprintln!("conformance: fully cached (0 explorations)");
    }

    // A context-bounded run is an explicitly approximate tier:
    // bound-induced inconclusives are the expected cost of the
    // approximation, so only definitive mismatches (and real budget
    // truncations) fail the run. An exhaustive run keeps the strict
    // policy — any inconclusive is a failure.
    let failing_inconclusive = inconclusive
        .iter()
        .filter(|r| context_bound == 0 || r.truncated)
        .count();
    if !mismatches.is_empty() || failing_inconclusive > 0 {
        std::process::exit(1);
    }
}

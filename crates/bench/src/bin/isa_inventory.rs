//! E6 — ISA coverage counts vs. the paper's §4.1 ("154 normal user
//! instructions … approximately 8500 lines of Sail … 270 instructions").

use ppc_isa::{inventory, Category};
use std::collections::BTreeMap;

fn main() {
    let inv = inventory();
    let mut by_cat: BTreeMap<String, (usize, u32)> = BTreeMap::new();
    for e in &inv {
        let entry = by_cat.entry(format!("{:?}", e.category)).or_default();
        entry.0 += 1;
        entry.1 += e.variants;
    }
    println!(
        "{:<20} {:>12} {:>10}",
        "category", "instructions", "variants"
    );
    println!("{}", "-".repeat(46));
    for (cat, (n, v)) in &by_cat {
        println!("{cat:<20} {n:>12} {v:>10}");
    }
    println!("{}", "-".repeat(46));
    let total: usize = inv.len();
    let variants: u32 = inv.iter().map(|e| e.variants).sum();
    println!("{:<20} {total:>12} {variants:>10}", "total");
    println!();
    println!("paper §4.1 comparison:");
    println!("  paper: 154 user branch+fixed-point instructions modelled (of 270 with decode)");
    let bf: usize = inv
        .iter()
        .filter(|e| {
            matches!(
                e.category,
                Category::Branch
                    | Category::CrLogical
                    | Category::Load
                    | Category::Store
                    | Category::LoadStoreMultiple
                    | Category::Arithmetic
                    | Category::Compare
                    | Category::Logical
                    | Category::RotateShift
                    | Category::SystemRegister
            )
        })
        .count();
    println!("  ours : {bf} branch+fixed-point instructions, {total} total with Book II");
}

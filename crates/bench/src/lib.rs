//! Experiment harnesses regenerating the paper's evaluation artifacts
//! (see `DESIGN.md` §6 and `EXPERIMENTS.md`):
//!
//! - `litmus_table` (E2/E3): the concurrent validation table — every
//!   library and generated litmus test run exhaustively, model verdict
//!   vs. paper/hardware expectation;
//! - `seq_conformance` (E1): the sequential differential test run;
//! - `isa_inventory` (E6): the coverage counts vs. the paper's §4.1;
//! - `statespace` (E5): state/transition counts and timing per test;
//! - Criterion benches `oracle` and `sequential` (E5 timing shapes).

/// Command-line flag parsing shared by the experiment binaries.
///
/// Every parser comes in two layers: a `try_*` core returning
/// `Result<_, String>` (unit-testable, message only — no process exit)
/// and a thin wrapper that prints `prog: message` and exits 2 on error.
/// The binaries share these so a bad `--steal-batch 0` fails with the
/// same words everywhere instead of silently defaulting in one tool and
/// erroring in another.
pub mod args {
    /// The value following flag `name`, if present.
    #[must_use]
    pub fn arg_value(args: &[String], name: &str) -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    }

    /// Fallible core of [`parse_arg`]: parse `name`'s value, defaulting
    /// only when the flag is absent.
    ///
    /// # Errors
    ///
    /// A flag given an unparseable value is a usage error, not a silent
    /// default — the same principle as rejecting unknown flags.
    pub fn try_parse_arg<T: std::str::FromStr>(
        args: &[String],
        name: &str,
        default: T,
    ) -> Result<T, String> {
        match arg_value(args, name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value `{v}` for {name}")),
        }
    }

    /// Parse `name`'s value, defaulting only when the flag is absent;
    /// exits 2 with a usage message on a malformed value.
    pub fn parse_arg<T: std::str::FromStr>(
        prog: &str,
        args: &[String],
        name: &str,
        default: T,
    ) -> T {
        try_parse_arg(args, name, default).unwrap_or_else(|e| usage_exit(prog, &e))
    }

    /// Fallible core of [`parse_nonzero_arg`]: like [`try_parse_arg`]
    /// for a `usize` flag whose *explicit* value must be positive.
    ///
    /// Flags like `--steal-batch` and `--context-bound` use `0`
    /// internally as "unset/engine default", but a user typing `0` is
    /// asking for something meaningless (a zero-state steal batch, a
    /// schedule with no context switches at all) — reject it and point
    /// at the right spelling instead of silently reinterpreting.
    ///
    /// # Errors
    ///
    /// Unparseable values and an explicit `0` are usage errors.
    pub fn try_parse_nonzero(args: &[String], name: &str, default: usize) -> Result<usize, String> {
        match try_parse_arg::<usize>(args, name, default)? {
            0 if arg_value(args, name).is_some() => Err(format!(
                "{name} must be a positive integer (omit the flag for the default)"
            )),
            n => Ok(n),
        }
    }

    /// [`try_parse_nonzero`], exiting 2 with a usage message on error.
    pub fn parse_nonzero_arg(prog: &str, args: &[String], name: &str, default: usize) -> usize {
        try_parse_nonzero(args, name, default).unwrap_or_else(|e| usage_exit(prog, &e))
    }

    /// Fallible core of [`check_flags`]: verify every argument is a
    /// known flag and every value flag has its value. Unknown arguments
    /// must not silently fall through — a typo'd `--library-only` would
    /// otherwise turn a quick check into the full multi-minute sweep.
    ///
    /// # Errors
    ///
    /// Reports the first unknown argument or missing value.
    pub fn try_check_flags(
        args: &[String],
        value_flags: &[&str],
        bool_flags: &[&str],
    ) -> Result<(), String> {
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            if value_flags.contains(&a) {
                if i + 1 >= args.len() {
                    return Err(format!("missing value for {a}"));
                }
                i += 2;
            } else if bool_flags.contains(&a) {
                i += 1;
            } else {
                return Err(format!("unknown argument `{a}`"));
            }
        }
        Ok(())
    }

    /// [`try_check_flags`], printing `usage` and exiting 2 on error.
    pub fn check_flags(
        prog: &str,
        args: &[String],
        value_flags: &[&str],
        bool_flags: &[&str],
        usage: &str,
    ) {
        if let Err(e) = try_check_flags(args, value_flags, bool_flags) {
            eprintln!("{prog}: {e}");
            eprintln!("usage: {usage}");
            std::process::exit(2);
        }
    }

    fn usage_exit(prog: &str, msg: &str) -> ! {
        eprintln!("{prog}: {msg}");
        std::process::exit(2)
    }

    #[cfg(test)]
    mod tests {
        use super::{try_check_flags, try_parse_arg, try_parse_nonzero};

        fn argv(args: &[&str]) -> Vec<String> {
            args.iter().map(|s| (*s).to_owned()).collect()
        }

        #[test]
        fn parse_arg_defaults_and_parses() {
            let args = argv(&["--jobs", "3"]);
            assert_eq!(try_parse_arg(&args, "--jobs", 0usize), Ok(3));
            assert_eq!(try_parse_arg(&args, "--threads", 4usize), Ok(4));
        }

        #[test]
        fn parse_arg_rejects_garbage_numerics() {
            for bad in ["x", "1.5", "-1", "3q", ""] {
                let args = argv(&["--jobs", bad]);
                let err = try_parse_arg::<usize>(&args, "--jobs", 0).expect_err("garbage accepted");
                assert!(
                    err.contains("--jobs") && err.contains(bad),
                    "unhelpful message: {err}"
                );
            }
        }

        #[test]
        fn nonzero_rejects_explicit_zero_but_keeps_zero_default() {
            // An explicit `0` is a usage error…
            let args = argv(&["--steal-batch", "0"]);
            let err = try_parse_nonzero(&args, "--steal-batch", 0).expect_err("zero accepted");
            assert!(err.contains("--steal-batch"), "unhelpful message: {err}");
            assert!(err.contains("positive"), "unhelpful message: {err}");
            // …but an absent flag keeps the internal `0 = engine
            // default` sentinel.
            assert_eq!(try_parse_nonzero(&args, "--context-bound", 0), Ok(0));
            // Positive explicit values pass through.
            let args = argv(&["--context-bound", "2"]);
            assert_eq!(try_parse_nonzero(&args, "--context-bound", 0), Ok(2));
            // Garbage is still garbage.
            let args = argv(&["--context-bound", "two"]);
            assert!(try_parse_nonzero(&args, "--context-bound", 0).is_err());
        }

        #[test]
        fn check_flags_rejects_unknown_and_missing_values() {
            let value = &["--jobs"];
            let boolean = &["--quiet"];
            assert_eq!(
                try_check_flags(&argv(&["--jobs", "2", "--quiet"]), value, boolean),
                Ok(())
            );
            let err = try_check_flags(&argv(&["--jbos", "2"]), value, boolean)
                .expect_err("typo accepted");
            assert!(err.contains("--jbos"), "unhelpful message: {err}");
            let err = try_check_flags(&argv(&["--jobs"]), value, boolean)
                .expect_err("missing value accepted");
            assert!(err.contains("missing value"), "unhelpful message: {err}");
        }
    }
}

//! Tests for the IDL: interpreter stepping/suspension, footprint analysis,
//! and address-taint tracking.

use crate::*;
use ppc_bits::Bv;
use std::sync::Arc;

fn ppc_idl_write_kind_normal() -> crate::WriteKind {
    crate::WriteKind::Normal
}

/// Build the paper's Fig.2 / §2.1.6 `stw RS,D(RA)` semantics:
///
/// ```text
/// if RA == 0 then b := 0 else b := GPR[RA];
/// EA := b + EXTS (D);
/// MEMw(EA,4) := (GPR[RS])[32 .. 63]
/// ```
fn stw_sem(rs: u8, ra: u8, d: i64) -> Arc<Sem> {
    let mut b = SemBuilder::new();
    let bb = b.local("b");
    let ea = b.local("EA");
    let data = b.local("data");
    b.reg_or_zero(bb, ra);
    b.assign(ea, b.add(b.l(bb), b.konst(Bv::from_i64(d, 64))));
    b.read_reg_slice(data, Reg::Gpr(rs), 32, 32);
    b.write_mem(b.l(ea), 4, b.l(data));
    Arc::new(b.build())
}

/// `lwz RT,D(RA)`.
fn lwz_sem(rt: u8, ra: u8, d: i64) -> Arc<Sem> {
    let mut b = SemBuilder::new();
    let bb = b.local("b");
    let ea = b.local("EA");
    let m = b.local("m");
    b.reg_or_zero(bb, ra);
    b.assign(ea, b.add(b.l(bb), b.konst(Bv::from_i64(d, 64))));
    b.read_mem(m, b.l(ea), 4);
    b.write_reg(Reg::Gpr(rt), b.extz(b.l(m), 64));
    Arc::new(b.build())
}

#[test]
fn validator_accepts_good_semantics() {
    assert!(validate(&stw_sem(7, 1, 0)).is_ok());
    assert!(validate(&lwz_sem(5, 2, 8)).is_ok());
}

#[test]
fn validator_rejects_use_before_def() {
    let mut b = SemBuilder::new();
    let x = b.local("x");
    let y = b.local("y");
    // y is never assigned before use
    b.assign(x, b.add(b.l(y), b.c64(1)));
    let sem = b.build();
    assert!(matches!(
        validate(&sem),
        Err(ValidateError::UseBeforeDef { .. })
    ));
}

#[test]
fn validator_if_requires_both_paths() {
    let mut b = SemBuilder::new();
    let x = b.local("x");
    let y = b.local("y");
    b.assign(x, b.c64(0));
    b.if_then(b.eq(b.l(x), b.c64(0)), |b| {
        b.assign(y, b.c64(1));
    });
    // y defined only on the then-path
    b.write_reg(Reg::Gpr(0), b.l(y));
    let sem = b.build();
    assert!(matches!(
        validate(&sem),
        Err(ValidateError::UseBeforeDef { .. })
    ));
}

#[test]
fn stw_interpretation_order_addresses_before_data() {
    // §2.1.6: the address register read comes before the data register
    // read, so the write address is computable before the data resolves.
    let mut st = InstrState::new(stw_sem(7, 1, 4));
    // b := GPR[1]
    match st.step().unwrap() {
        Outcome::ReadReg { slice } => {
            assert_eq!(slice.reg, Reg::Gpr(1));
            st.resume_reg(Bv::from_u64(0x1000, 64)).unwrap();
        }
        o => panic!("expected address register read, got {o:?}"),
    }
    // EA := b + EXTS(D)
    assert!(matches!(st.step().unwrap(), Outcome::Internal));
    // data := GPR[7][32..63]
    match st.step().unwrap() {
        Outcome::ReadReg { slice } => {
            assert_eq!(slice, RegSlice::new(Reg::Gpr(7), 32, 32));
            st.resume_reg(Bv::from_u64(0xDEAD_BEEF, 32)).unwrap();
        }
        o => panic!("expected data register read, got {o:?}"),
    }
    // MEMw(EA,4) := data
    match st.step().unwrap() {
        Outcome::WriteMem {
            address,
            size,
            value,
            kind,
        } => {
            assert_eq!(kind, ppc_idl_write_kind_normal());
            assert_eq!(address, 0x1004);
            assert_eq!(size, 4);
            assert_eq!(value.to_u64(), Some(0xDEAD_BEEF));
        }
        o => panic!("expected memory write, got {o:?}"),
    }
    assert!(matches!(st.step().unwrap(), Outcome::Done));
    assert!(st.is_done());
}

#[test]
fn ra_zero_means_literal_zero() {
    let mut st = InstrState::new(stw_sem(7, 0, 0x80));
    // No register read for the base: straight to internal assigns.
    assert!(matches!(st.step().unwrap(), Outcome::Internal)); // b := 0
    assert!(matches!(st.step().unwrap(), Outcome::Internal)); // EA := ...
    match st.step().unwrap() {
        Outcome::ReadReg { slice } => {
            assert_eq!(slice.reg, Reg::Gpr(7));
            st.resume_reg(Bv::from_u64(1, 32)).unwrap();
        }
        o => panic!("unexpected {o:?}"),
    }
    match st.step().unwrap() {
        Outcome::WriteMem { address, .. } => assert_eq!(address, 0x80),
        o => panic!("unexpected {o:?}"),
    }
}

#[test]
fn step_while_pending_is_an_error() {
    let mut st = InstrState::new(lwz_sem(5, 2, 0));
    match st.step().unwrap() {
        Outcome::ReadReg { .. } => {}
        o => panic!("unexpected {o:?}"),
    }
    assert_eq!(st.step(), Err(IdlError::PendingResume));
    assert!(st.is_pending());
    assert_eq!(st.pending_reg(), Some(Reg::Gpr(2).whole()));
}

#[test]
fn resume_checks_widths() {
    let mut st = InstrState::new(lwz_sem(5, 2, 0));
    let _ = st.step().unwrap();
    assert_eq!(
        st.resume_reg(Bv::from_u64(0, 32)),
        Err(IdlError::WidthMismatch {
            expected: 64,
            got: 32
        })
    );
    // After the error the read is still pending and resumable.
    st.resume_reg(Bv::from_u64(0x2000, 64)).unwrap();
}

#[test]
fn mem_read_suspension_and_resume() {
    let mut st = InstrState::new(lwz_sem(5, 2, 8));
    let _ = st.step().unwrap(); // ReadReg GPR2
    st.resume_reg(Bv::from_u64(0x1000, 64)).unwrap();
    let _ = st.step().unwrap(); // EA :=
    match st.step().unwrap() {
        Outcome::ReadMem {
            address,
            size,
            kind: _,
        } => {
            assert_eq!((address, size), (0x1008, 4));
        }
        o => panic!("unexpected {o:?}"),
    }
    assert_eq!(st.pending_mem(), Some((0x1008, 4)));
    st.resume_mem(Bv::from_u64(42, 32)).unwrap();
    match st.step().unwrap() {
        Outcome::WriteReg { slice, value } => {
            assert_eq!(slice, Reg::Gpr(5).whole());
            assert_eq!(value.to_u64(), Some(42));
        }
        o => panic!("unexpected {o:?}"),
    }
}

#[test]
fn undef_address_is_rejected() {
    let mut b = SemBuilder::new();
    let m = b.local("m");
    b.read_mem(m, b.konst(Bv::undef(64)), 4);
    let mut st = InstrState::new(Arc::new(b.build()));
    assert_eq!(st.step(), Err(IdlError::UndefAddress));
}

#[test]
fn footprint_of_stw() {
    let fp = analyze(&stw_sem(7, 1, 0));
    assert!(fp.regs_in.contains(&Reg::Gpr(1).whole()));
    assert!(fp.regs_in.contains(&RegSlice::new(Reg::Gpr(7), 32, 32)));
    assert!(fp.regs_out.is_empty());
    assert!(fp.is_store());
    assert!(!fp.is_load());
    // Address is not yet determined (depends on GPR1).
    assert_eq!(fp.mem_writes, AccessSet::Unknown);
    // Taint: the *base* register feeds the address, the data register
    // does not. This is the heart of LB+datas+WW vs LB+addrs+WW.
    assert!(fp.addr_regs.contains(&Reg::Gpr(1).whole()));
    assert!(!fp.addr_regs.contains(&RegSlice::new(Reg::Gpr(7), 32, 32)));
    assert_eq!(fp.nias, std::collections::BTreeSet::from([NiaTarget::Succ]));
}

#[test]
fn footprint_with_ra_zero_is_concrete() {
    let fp = analyze(&stw_sem(7, 0, 0x100));
    assert_eq!(
        fp.mem_writes,
        AccessSet::Concrete(std::collections::BTreeSet::from([(0x100u64, 4usize)]))
    );
    assert!(fp.addr_regs.is_empty());
}

#[test]
fn partial_reanalysis_refines_footprint() {
    // Resolve the address register; the re-analysis must then report a
    // concrete write footprint even though the data register is pending.
    let mut st = InstrState::new(stw_sem(7, 1, 4));
    match st.step().unwrap() {
        Outcome::ReadReg { .. } => st.resume_reg(Bv::from_u64(0x1000, 64)).unwrap(),
        o => panic!("unexpected {o:?}"),
    }
    let fp = analyze_from(&st);
    assert_eq!(
        fp.mem_writes,
        AccessSet::Concrete(std::collections::BTreeSet::from([(0x1004u64, 4usize)]))
    );
    // The remaining register read (the data) is not address-feeding.
    assert!(fp.addr_regs.is_empty());
}

#[test]
fn reanalysis_of_pending_read_keeps_taint() {
    // While the *address* register read is pending, the footprint is
    // unknown and the pending slice is flagged as address-feeding.
    let mut st = InstrState::new(stw_sem(7, 1, 4));
    match st.step().unwrap() {
        Outcome::ReadReg { .. } => {} // leave pending
        o => panic!("unexpected {o:?}"),
    }
    let fp = analyze_from(&st);
    assert_eq!(fp.mem_writes, AccessSet::Unknown);
    assert!(fp.addr_regs.contains(&Reg::Gpr(1).whole()));
}

#[test]
fn conditional_branch_nia_analysis() {
    // if cond_bit then NIA := 0x200 (else fall through)
    let mut b = SemBuilder::new();
    let c = b.local("c");
    b.read_reg_slice(c, Reg::Cr, 2, 1);
    b.if_then(b.l(c), |b| {
        b.write_reg(Reg::Nia, b.c64(0x200));
    });
    let sem = Arc::new(b.build());
    let fp = analyze(&sem);
    assert!(fp.nias.contains(&NiaTarget::Succ));
    assert!(fp.nias.contains(&NiaTarget::Concrete(0x200)));
    // CR bit is in regs_in with bit granularity.
    assert!(fp.regs_in.contains(&RegSlice::new(Reg::Cr, 2, 1)));
}

#[test]
fn indirect_branch_nia_analysis() {
    // NIA := LR (unknown at analysis time)
    let mut b = SemBuilder::new();
    let t = b.local("t");
    b.read_reg(t, Reg::Lr);
    b.write_reg(Reg::Nia, b.l(t));
    let fp = analyze(&Arc::new(b.build()));
    assert_eq!(
        fp.nias,
        std::collections::BTreeSet::from([NiaTarget::Indirect])
    );
}

#[test]
fn cia_reads_do_not_create_dependencies() {
    // §2.1.4: CIA/NIA must not give rise to dependencies.
    let mut b = SemBuilder::new();
    let pc = b.local("pc");
    b.read_reg(pc, Reg::Cia);
    b.write_reg(Reg::Nia, b.add(b.l(pc), b.c64(8)));
    let fp = analyze(&Arc::new(b.build()));
    assert!(fp.regs_in.is_empty());
    assert!(fp.regs_out.is_empty());
}

#[test]
fn barrier_outcome_and_footprint() {
    let mut b = SemBuilder::new();
    b.barrier(BarrierKind::Sync);
    let sem = Arc::new(b.build());
    let fp = analyze(&sem);
    assert!(fp.barriers.contains(&BarrierKind::Sync));
    assert!(fp.is_storage_barrier());
    let mut st = InstrState::new(sem);
    assert!(matches!(
        st.step().unwrap(),
        Outcome::Barrier {
            kind: BarrierKind::Sync
        }
    ));
    assert!(!BarrierKind::Isync.goes_to_storage());
}

#[test]
fn for_loop_executes_inclusive_bounds() {
    // sum := 0; for i = 1 to 4 do sum := sum + i
    let mut b = SemBuilder::new();
    let sum = b.local("sum");
    let i = b.local("i");
    b.assign(sum, b.c64(0));
    b.for_loop(i, b.c64(1), b.c64(4), false, |b| {
        b.assign(sum, b.add(b.l(sum), b.l(i)));
    });
    b.write_reg(Reg::Gpr(3), b.l(sum));
    let mut st = InstrState::new(Arc::new(b.build()));
    loop {
        match st.step().unwrap() {
            Outcome::WriteReg { value, .. } => {
                assert_eq!(value.to_u64(), Some(10));
                break;
            }
            Outcome::Done => panic!("finished without writing"),
            _ => {}
        }
    }
}

#[test]
fn downto_loop_and_dynamic_gpr() {
    // for i = 2 downto 1 do GPR[i] := i
    let mut b = SemBuilder::new();
    let i = b.local("i");
    b.for_loop(i, b.c64(2), b.c64(1), true, |b| {
        b.write_gpr_dyn(b.l(i), b.extz(b.l(i), 64));
    });
    let mut st = InstrState::new(Arc::new(b.build()));
    let mut writes = Vec::new();
    loop {
        match st.step().unwrap() {
            Outcome::WriteReg { slice, value } => {
                writes.push((slice.reg, value.to_u64().unwrap()));
            }
            Outcome::Done => break,
            _ => {}
        }
    }
    assert_eq!(writes, vec![(Reg::Gpr(2), 2), (Reg::Gpr(1), 1)]);
}

#[test]
fn analysis_forks_on_unknown_condition() {
    // if GPR3 == 0 then GPR4 := 1 else GPR5 := 1  — both writes possible.
    let mut b = SemBuilder::new();
    let x = b.local("x");
    b.read_reg(x, Reg::Gpr(3));
    b.if_then_else(
        b.eq(b.l(x), b.c64(0)),
        |b| b.write_reg(Reg::Gpr(4), b.c64(1)),
        |b| b.write_reg(Reg::Gpr(5), b.c64(1)),
    );
    let fp = analyze(&Arc::new(b.build()));
    assert!(fp.regs_out.contains(&Reg::Gpr(4).whole()));
    assert!(fp.regs_out.contains(&Reg::Gpr(5).whole()));
    assert!(!fp.incomplete);
}

#[test]
fn access_set_overlap() {
    let mut s = AccessSet::None;
    assert!(!s.may_overlap(0x100, 4));
    s.add_for_test(0x100, 4);
    assert!(s.may_overlap(0x100, 4));
    assert!(s.may_overlap(0x102, 1));
    assert!(s.may_overlap(0xFE, 4));
    assert!(!s.may_overlap(0x104, 4));
    assert!(!s.may_overlap(0xFC, 4));
    assert!(AccessSet::Unknown.may_overlap(0, 1));
}

impl AccessSet {
    fn add_for_test(&mut self, a: u64, s: usize) {
        match self {
            AccessSet::None => {
                *self = AccessSet::Concrete(std::collections::BTreeSet::from([(a, s)]));
            }
            AccessSet::Concrete(set) => {
                set.insert((a, s));
            }
            AccessSet::Unknown => {}
        }
    }
}

#[test]
fn pretty_printing_mentions_names() {
    let sem = stw_sem(7, 1, 0);
    let txt = sem.pretty();
    assert!(txt.contains("EA :="), "got: {txt}");
    assert!(txt.contains("MEMw"), "got: {txt}");
    let st = InstrState::new(sem);
    let rem = st.remaining_micro_ops();
    assert_eq!(rem.len(), 4);
}

#[test]
fn clone_is_a_true_snapshot() {
    let mut st = InstrState::new(lwz_sem(5, 2, 0));
    let snap = st.clone();
    let _ = st.step().unwrap();
    st.resume_reg(Bv::from_u64(0x1000, 64)).unwrap();
    // The snapshot is still at the beginning.
    let mut replay = snap;
    assert!(matches!(replay.step().unwrap(), Outcome::ReadReg { .. }));
}

/// The digest-partitioned distributed oracle requires `InstrState`'s
/// hash to be identical across *processes*: a state decoded against a
/// freshly built (different-allocation, content-equal) semantics must
/// hash the same as the original. Pointer-based hashing passes every
/// single-process test and silently breaks exactly this.
#[test]
fn instr_state_hash_is_rebuild_stable() {
    use crate::codec::{decode_instr_state, encode_instr_state, sem_blocks};
    use ppc_bits::{Reader, Writer};
    use std::hash::{Hash, Hasher};

    fn fingerprint(st: &InstrState) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        st.hash(&mut h);
        h.finish()
    }

    // Two builds of the same semantics: content-equal, disjoint Arcs —
    // what two worker processes see after parsing the same program.
    let ours = stw_sem(7, 1, 0);
    let theirs = stw_sem(7, 1, 0);
    assert!(!Arc::ptr_eq(&ours, &theirs));

    // Suspend mid-execution so the control stack holds a sub-block
    // (the `RA == 0` else-branch) and `pending` is live.
    let mut st = InstrState::new(ours.clone());
    assert!(matches!(st.step().unwrap(), Outcome::ReadReg { .. }));

    let mut w = Writer::new();
    encode_instr_state(&mut w, &st, &sem_blocks(&ours));
    let bytes = w.into_bytes();
    let rebuilt = decode_instr_state(&mut Reader::new(&bytes), &theirs, &sem_blocks(&theirs))
        .expect("state decodes against the content-equal semantics");

    assert_eq!(
        fingerprint(&st),
        fingerprint(&rebuilt),
        "InstrState hash must not depend on which process built the semantics"
    );
}

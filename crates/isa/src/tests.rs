//! ISA tests: decode/encode round trips, assembly parsing, and
//! instruction semantics executed against a miniature sequential machine.

use crate::ast::*;
use crate::{decode, encode, inventory, parse_asm, semantics};
use ppc_bits::Bv;
use ppc_idl::{analyze, InstrState, Outcome, Reg, RegSlice};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A miniature sequential machine for semantics unit tests (the real
/// sequential reference lives in `ppc-seqref`; this one is deliberately
/// tiny).
#[derive(Default)]
struct Mini {
    regs: BTreeMap<Reg, Bv>,
    mem: BTreeMap<u64, Bv>,
    cia: u64,
    nia: Option<Bv>,
}

impl Mini {
    fn reg(&self, r: Reg) -> Bv {
        self.regs
            .get(&r)
            .cloned()
            .unwrap_or_else(|| Bv::zeros(r.width()))
    }

    fn set_reg(&mut self, r: Reg, v: Bv) {
        assert_eq!(v.len(), r.width());
        self.regs.insert(r, v);
    }

    fn set_gpr(&mut self, n: u8, x: u64) {
        self.set_reg(Reg::Gpr(n), Bv::from_u64(x, 64));
    }

    fn gpr(&self, n: u8) -> u64 {
        self.reg(Reg::Gpr(n)).to_u64().expect("defined gpr")
    }

    fn read_slice(&self, s: RegSlice) -> Bv {
        if s.reg == Reg::Cia {
            return Bv::from_u64(self.cia, 64).slice(s.start, s.len);
        }
        self.reg(s.reg).slice(s.start, s.len)
    }

    fn write_slice(&mut self, s: RegSlice, v: Bv) {
        if s.reg == Reg::Nia {
            self.nia = Some(v);
            return;
        }
        let cur = self.reg(s.reg);
        self.regs.insert(s.reg, cur.with_slice(s.start, &v));
    }

    fn read_mem(&self, addr: u64, size: usize) -> Bv {
        let mut v = Bv::empty();
        for i in 0..size {
            let byte = self
                .mem
                .get(&(addr + i as u64))
                .cloned()
                .unwrap_or_else(|| Bv::zeros(8));
            v = v.concat(&byte);
        }
        v
    }

    fn write_mem(&mut self, addr: u64, value: &Bv) {
        for (i, byte) in value.to_lifted_bytes().into_iter().enumerate() {
            self.mem.insert(addr + i as u64, byte);
        }
    }

    /// Execute one instruction to completion.
    fn exec(&mut self, i: &Instruction) {
        let sem = Arc::new(semantics(i));
        ppc_idl::validate(&sem).expect("semantics validate");
        let mut st = InstrState::new(sem);
        loop {
            match st.step().expect("step") {
                Outcome::ReadReg { slice } => {
                    let v = self.read_slice(slice);
                    st.resume_reg(v).expect("resume");
                }
                Outcome::WriteReg { slice, value } => self.write_slice(slice, value),
                Outcome::ReadMem { address, size, .. } => {
                    let v = self.read_mem(address, size);
                    st.resume_mem(v).expect("resume");
                }
                Outcome::WriteMem {
                    address,
                    size,
                    value,
                    kind,
                } => {
                    assert_eq!(value.len(), size * 8);
                    self.write_mem(address, &value);
                    if kind == ppc_idl::WriteKind::Conditional {
                        st.resume_write_cond(true).expect("resume");
                    }
                }
                Outcome::Barrier { .. } | Outcome::Internal => {}
                Outcome::Done => break,
            }
        }
        self.cia = match self.nia.take() {
            Some(v) => v.to_u64().expect("defined nia"),
            None => self.cia + 4,
        };
    }

    fn exec_asm(&mut self, line: &str) {
        let i = parse_asm(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        self.exec(&i);
    }

    fn cr(&self) -> u32 {
        self.reg(Reg::Cr).to_u64().expect("defined cr") as u32
    }
}

// ----- decode/encode ---------------------------------------------------

/// A broad sample of instructions covering every variant family.
fn sample_instructions() -> Vec<Instruction> {
    use Instruction::*;
    let mut v = vec![
        B {
            li: 0x1234,
            aa: false,
            lk: false,
        },
        B {
            li: -4,
            aa: false,
            lk: true,
        },
        Bc {
            bo: 12,
            bi: 2,
            bd: 3,
            aa: false,
            lk: false,
        },
        Bc {
            bo: 4,
            bi: 14,
            bd: -2,
            aa: false,
            lk: false,
        },
        Bclr {
            bo: 20,
            bi: 0,
            bh: 0,
            lk: false,
        },
        Bcctr {
            bo: 20,
            bi: 0,
            bh: 0,
            lk: true,
        },
        Mcrf { bf: 3, bfa: 7 },
        Lmw {
            rt: 29,
            ra: 1,
            d: 8,
        },
        Stmw {
            rs: 29,
            ra: 1,
            d: -8,
        },
        Lswi {
            rt: 5,
            ra: 1,
            nb: 7,
        },
        Stswi {
            rs: 5,
            ra: 1,
            nb: 0,
        },
        Larx {
            size: 4,
            rt: 3,
            ra: 0,
            rb: 5,
        },
        Larx {
            size: 8,
            rt: 3,
            ra: 4,
            rb: 5,
        },
        Stcx {
            size: 4,
            rs: 3,
            ra: 0,
            rb: 5,
        },
        Stcx {
            size: 8,
            rs: 3,
            ra: 4,
            rb: 5,
        },
        Addi {
            rt: 1,
            ra: 2,
            si: -1,
        },
        Addis {
            rt: 1,
            ra: 0,
            si: 0x7FFF,
        },
        Addic {
            rt: 1,
            ra: 2,
            si: 3,
            rc: true,
        },
        Addic {
            rt: 1,
            ra: 2,
            si: 3,
            rc: false,
        },
        Subfic {
            rt: 1,
            ra: 2,
            si: -5,
        },
        Mulli {
            rt: 1,
            ra: 2,
            si: 100,
        },
        Cmpi {
            bf: 7,
            l: false,
            ra: 3,
            si: -1,
        },
        Cmp {
            bf: 0,
            l: true,
            ra: 3,
            rb: 4,
        },
        Cmpli {
            bf: 2,
            l: false,
            ra: 3,
            ui: 0xFFFF,
        },
        Cmpl {
            bf: 1,
            l: true,
            ra: 3,
            rb: 4,
        },
        Rlwinm {
            rs: 1,
            ra: 2,
            sh: 5,
            mb: 0,
            me: 31,
            rc: true,
        },
        Rlwnm {
            rs: 1,
            ra: 2,
            rb: 3,
            mb: 4,
            me: 27,
            rc: false,
        },
        Rlwimi {
            rs: 1,
            ra: 2,
            sh: 16,
            mb: 0,
            me: 15,
            rc: false,
        },
        Srawi {
            rs: 1,
            ra: 2,
            sh: 31,
            rc: false,
        },
        Sradi {
            rs: 1,
            ra: 2,
            sh: 63,
            rc: true,
        },
        Mfspr {
            rt: 3,
            spr: SprName::Lr,
        },
        Mtspr {
            spr: SprName::Ctr,
            rs: 3,
        },
        Mfcr { rt: 9 },
        Mfocrf { rt: 9, fxm: 0x10 },
        Mtcrf { fxm: 0xFF, rs: 9 },
        Mtocrf { fxm: 0x08, rs: 9 },
        Sync { l: 0 },
        Sync { l: 1 },
        Eieio,
        Isync,
    ];
    for op in [
        CrOp::And,
        CrOp::Or,
        CrOp::Xor,
        CrOp::Nand,
        CrOp::Nor,
        CrOp::Eqv,
        CrOp::Andc,
        CrOp::Orc,
    ] {
        v.push(CrLogical {
            op,
            bt: 1,
            ba: 2,
            bb: 3,
        });
    }
    // All load shapes.
    for &(size, alg, upd, brx) in &[
        (1u8, false, false, false),
        (1, false, true, false),
        (2, false, false, false),
        (2, false, true, false),
        (2, true, false, false),
        (2, true, true, false),
        (2, false, false, true),
        (4, false, false, false),
        (4, false, true, false),
        (4, true, false, false),
        (4, false, false, true),
        (8, false, false, false),
        (8, false, true, false),
        (8, false, false, true),
    ] {
        v.push(Load {
            size,
            algebraic: alg,
            update: upd,
            byterev: brx,
            rt: 7,
            ra: 3,
            ea: Ea::Rb(9),
        });
        // D-forms exist except for byte-reversed and lwa-update; lwax
        // exists but lwaux only as X-form.
        #[allow(clippy::nonminimal_bool)]
        if !brx && !(size == 4 && alg && upd) {
            v.push(Load {
                size,
                algebraic: alg,
                update: upd,
                byterev: false,
                rt: 7,
                ra: 3,
                ea: Ea::D(if size == 8 || (size == 4 && alg) {
                    16
                } else {
                    17
                }),
            });
        }
    }
    v.push(Load {
        size: 4,
        algebraic: true,
        update: true,
        byterev: false,
        rt: 7,
        ra: 3,
        ea: Ea::Rb(9),
    });
    // All store shapes.
    for &(size, upd, brx) in &[
        (1u8, false, false),
        (1, true, false),
        (2, false, false),
        (2, true, false),
        (2, false, true),
        (4, false, false),
        (4, true, false),
        (4, false, true),
        (8, false, false),
        (8, true, false),
        (8, false, true),
    ] {
        v.push(Store {
            size,
            update: upd,
            byterev: brx,
            rs: 7,
            ra: 3,
            ea: Ea::Rb(9),
        });
        if !brx {
            v.push(Store {
                size,
                update: upd,
                byterev: false,
                rs: 7,
                ra: 3,
                ea: Ea::D(if size == 8 { -16 } else { -17 }),
            });
        }
    }
    // Arithmetic: all ops with all flag shapes.
    for op in [
        ArithOp::Add,
        ArithOp::Subf,
        ArithOp::Addc,
        ArithOp::Subfc,
        ArithOp::Adde,
        ArithOp::Subfe,
        ArithOp::Addme,
        ArithOp::Subfme,
        ArithOp::Addze,
        ArithOp::Subfze,
        ArithOp::Neg,
        ArithOp::Mullw,
        ArithOp::Mulhw,
        ArithOp::Mulhwu,
        ArithOp::Mulld,
        ArithOp::Mulhd,
        ArithOp::Mulhdu,
        ArithOp::Divw,
        ArithOp::Divwu,
        ArithOp::Divd,
        ArithOp::Divdu,
    ] {
        let rb = if op.has_rb() { 6 } else { 0 };
        v.push(Instruction::Arith {
            op,
            rt: 4,
            ra: 5,
            rb,
            oe: false,
            rc: false,
        });
        v.push(Instruction::Arith {
            op,
            rt: 4,
            ra: 5,
            rb,
            oe: false,
            rc: true,
        });
        if op.has_oe() {
            v.push(Instruction::Arith {
                op,
                rt: 4,
                ra: 5,
                rb,
                oe: true,
                rc: true,
            });
        }
    }
    for op in [
        LogImmOp::Andi,
        LogImmOp::Andis,
        LogImmOp::Ori,
        LogImmOp::Oris,
        LogImmOp::Xori,
        LogImmOp::Xoris,
    ] {
        v.push(Instruction::LogImm {
            op,
            rs: 1,
            ra: 2,
            ui: 0xBEEF,
        });
    }
    for op in [
        LogOp::And,
        LogOp::Or,
        LogOp::Xor,
        LogOp::Nand,
        LogOp::Nor,
        LogOp::Eqv,
        LogOp::Andc,
        LogOp::Orc,
    ] {
        v.push(Instruction::Logical {
            op,
            rs: 1,
            ra: 2,
            rb: 3,
            rc: false,
        });
        v.push(Instruction::Logical {
            op,
            rs: 1,
            ra: 2,
            rb: 3,
            rc: true,
        });
    }
    for op in [
        UnaryOp::Extsb,
        UnaryOp::Extsh,
        UnaryOp::Extsw,
        UnaryOp::Cntlzw,
        UnaryOp::Cntlzd,
    ] {
        v.push(Instruction::Unary {
            op,
            rs: 1,
            ra: 2,
            rc: true,
        });
    }
    v.push(Instruction::Unary {
        op: UnaryOp::Popcntb,
        rs: 1,
        ra: 2,
        rc: false,
    });
    for op in [RldOp::Icl, RldOp::Icr, RldOp::Ic, RldOp::Imi] {
        v.push(Instruction::Rld {
            op,
            rs: 1,
            ra: 2,
            sh: 43,
            mbe: 37,
            rc: false,
        });
    }
    for op in [RldcOp::Cl, RldcOp::Cr] {
        v.push(Instruction::Rldc {
            op,
            rs: 1,
            ra: 2,
            rb: 3,
            mbe: 37,
            rc: true,
        });
    }
    for op in [
        ShiftOp::Slw,
        ShiftOp::Srw,
        ShiftOp::Sraw,
        ShiftOp::Sld,
        ShiftOp::Srd,
        ShiftOp::Srad,
    ] {
        v.push(Instruction::Shift {
            op,
            rs: 1,
            ra: 2,
            rb: 3,
            rc: false,
        });
    }
    v
}

#[test]
fn decode_encode_round_trip() {
    for i in sample_instructions() {
        let w = encode(&i);
        let back = decode(w).unwrap_or_else(|e| panic!("{}: {e}", i.mnemonic()));
        assert_eq!(
            back,
            i,
            "round trip failed for {} (0x{w:08x})",
            i.mnemonic()
        );
    }
}

#[test]
fn asm_round_trip() {
    for i in sample_instructions() {
        let text = i.to_asm();
        // Branches print raw displacements that need no label context.
        let back = parse_asm(&text).unwrap_or_else(|e| panic!("`{text}`: {e}"));
        assert_eq!(
            encode(&back),
            encode(&i),
            "asm round trip failed for `{text}`"
        );
    }
}

#[test]
fn all_semantics_validate() {
    for i in sample_instructions() {
        let sem = semantics(&i);
        ppc_idl::validate(&sem).unwrap_or_else(|e| panic!("{}: {e}", i.mnemonic()));
    }
}

#[test]
fn extended_mnemonics_parse() {
    assert_eq!(
        parse_asm("li r5,10").unwrap(),
        Instruction::Addi {
            rt: 5,
            ra: 0,
            si: 10
        }
    );
    assert_eq!(
        parse_asm("mr r6,r5").unwrap(),
        Instruction::Logical {
            op: LogOp::Or,
            rs: 5,
            ra: 6,
            rb: 5,
            rc: false
        }
    );
    assert_eq!(
        parse_asm("cmpw r5,r7").unwrap(),
        Instruction::Cmp {
            bf: 0,
            l: false,
            ra: 5,
            rb: 7
        }
    );
    assert_eq!(
        parse_asm("cmpwi r5,0").unwrap(),
        Instruction::Cmpi {
            bf: 0,
            l: false,
            ra: 5,
            si: 0
        }
    );
    assert_eq!(parse_asm("sync").unwrap(), Instruction::Sync { l: 0 });
    assert_eq!(parse_asm("lwsync").unwrap(), Instruction::Sync { l: 1 });
    assert_eq!(
        parse_asm("beq 8").unwrap(),
        Instruction::Bc {
            bo: 12,
            bi: 2,
            bd: 2,
            aa: false,
            lk: false
        }
    );
    assert_eq!(
        parse_asm("bne cr1,8").unwrap(),
        Instruction::Bc {
            bo: 4,
            bi: 6,
            bd: 2,
            aa: false,
            lk: false
        }
    );
    // Label resolution.
    let i = crate::parse_asm_ctx("beq L0", 4, &|l| (l == "L0").then_some(12)).unwrap();
    assert_eq!(
        i,
        Instruction::Bc {
            bo: 12,
            bi: 2,
            bd: 2,
            aa: false,
            lk: false
        }
    );
}

#[test]
fn invalid_forms_rejected() {
    // lwzu with RA == RT is invalid.
    let w = encode(&Instruction::Load {
        size: 4,
        algebraic: false,
        update: true,
        byterev: false,
        rt: 5,
        ra: 5,
        ea: Ea::D(0),
    });
    assert!(matches!(
        decode(w),
        Err(crate::DecodeError::InvalidForm { .. })
    ));
    // stwu with RA == 0 is invalid.
    let w = encode(&Instruction::Store {
        size: 4,
        update: true,
        byterev: false,
        rs: 5,
        ra: 0,
        ea: Ea::D(0),
    });
    assert!(matches!(
        decode(w),
        Err(crate::DecodeError::InvalidForm { .. })
    ));
}

// ----- semantics behaviour --------------------------------------------

#[test]
fn add_and_record() {
    let mut m = Mini::default();
    m.set_gpr(2, 5);
    m.set_gpr(3, 7);
    m.exec_asm("add r1,r2,r3");
    assert_eq!(m.gpr(1), 12);
    // add. with a negative result sets CR0 = LT||..||SO
    m.set_gpr(2, u64::MAX); // -1
    m.set_gpr(3, 0);
    m.exec_asm("add. r1,r2,r3");
    assert_eq!(m.gpr(1), u64::MAX);
    assert_eq!(m.cr() >> 28, 0b1000, "CR0 should be LT");
}

#[test]
fn addi_li_lis() {
    let mut m = Mini::default();
    m.exec_asm("li r1,-1");
    assert_eq!(m.gpr(1), u64::MAX);
    m.exec_asm("lis r2,1");
    assert_eq!(m.gpr(2), 0x10000);
    m.set_gpr(3, 100);
    m.exec_asm("addi r4,r3,-50");
    assert_eq!(m.gpr(4), 50);
    // addi with RA=0 uses the literal zero.
    m.exec_asm("addi r5,r0,7");
    assert_eq!(m.gpr(5), 7);
}

#[test]
fn carry_chain_add() {
    // 128-bit add via addc/adde.
    let mut m = Mini::default();
    m.set_gpr(2, u64::MAX);
    m.set_gpr(3, 1);
    m.set_gpr(4, 10);
    m.set_gpr(5, 20);
    m.exec_asm("addc r6,r2,r3"); // low: carry out
    m.exec_asm("adde r7,r4,r5"); // high: 10+20+1
    assert_eq!(m.gpr(6), 0);
    assert_eq!(m.gpr(7), 31);
}

#[test]
fn subf_and_neg() {
    let mut m = Mini::default();
    m.set_gpr(2, 30);
    m.set_gpr(3, 100);
    m.exec_asm("subf r1,r2,r3"); // RB - RA = 70
    assert_eq!(m.gpr(1), 70);
    m.exec_asm("neg r4,r3");
    assert_eq!(m.gpr(4) as i64, -100);
    m.exec_asm("subfic r5,r2,10"); // 10 - 30
    assert_eq!(m.gpr(5) as i64, -20);
}

#[test]
fn addo_sets_ov_and_so() {
    let mut m = Mini::default();
    m.set_gpr(2, i64::MAX as u64);
    m.set_gpr(3, 1);
    m.exec_asm("addo r1,r2,r3");
    let xer = m.reg(Reg::Xer);
    assert_eq!(xer.bit(32), ppc_bits::Bit::One, "SO");
    assert_eq!(xer.bit(33), ppc_bits::Bit::One, "OV");
    // A subsequent non-overflowing addo clears OV but SO sticks.
    m.set_gpr(2, 1);
    m.exec_asm("addo r1,r2,r3");
    let xer = m.reg(Reg::Xer);
    assert_eq!(xer.bit(32), ppc_bits::Bit::One, "SO sticky");
    assert_eq!(xer.bit(33), ppc_bits::Bit::Zero, "OV cleared");
}

#[test]
fn mul_div() {
    let mut m = Mini::default();
    m.set_gpr(2, 0xFFFF_FFFF); // as word: -1
    m.set_gpr(3, 2);
    m.exec_asm("mullw r1,r2,r3");
    assert_eq!(m.gpr(1) as i64, -2);
    m.exec_asm("mulld r1,r2,r3");
    assert_eq!(m.gpr(1), 0x1_FFFF_FFFE);
    m.set_gpr(4, 100);
    m.set_gpr(5, 7);
    m.exec_asm("divw r1,r4,r5");
    // The high word of a divw result is architecturally undefined.
    let r1 = m.reg(Reg::Gpr(1));
    assert_eq!(r1.slice(32, 32).to_u64(), Some(14));
    assert!(r1.slice(0, 32).all_undef());
    m.exec_asm("divd r1,r4,r5");
    assert_eq!(m.gpr(1), 14);
    m.exec_asm("mulhdu r1,r2,r3");
    assert_eq!(m.gpr(1), 0);
    m.exec_asm("mulli r1,r4,-3");
    assert_eq!(m.gpr(1) as i64, -300);
}

#[test]
fn divide_by_zero_is_undefined() {
    let mut m = Mini::default();
    m.set_gpr(4, 100);
    m.set_gpr(5, 0);
    m.exec_asm("divd r1,r4,r5");
    assert!(m.reg(Reg::Gpr(1)).all_undef());
    // divdo. also sets OV and records.
    m.exec_asm("divdo r1,r4,r5");
    let xer = m.reg(Reg::Xer);
    assert_eq!(xer.bit(33), ppc_bits::Bit::One, "OV on /0");
}

#[test]
fn logical_ops() {
    let mut m = Mini::default();
    m.set_gpr(2, 0b1100);
    m.set_gpr(3, 0b1010);
    m.exec_asm("and r1,r2,r3");
    assert_eq!(m.gpr(1), 0b1000);
    m.exec_asm("or r1,r2,r3");
    assert_eq!(m.gpr(1), 0b1110);
    m.exec_asm("xor r1,r2,r3");
    assert_eq!(m.gpr(1), 0b0110);
    m.exec_asm("nand r1,r2,r3");
    assert_eq!(m.gpr(1), !0b1000u64);
    m.exec_asm("nor r1,r2,r3");
    assert_eq!(m.gpr(1), !0b1110u64);
    m.exec_asm("eqv r1,r2,r3");
    assert_eq!(m.gpr(1), !0b0110u64);
    m.exec_asm("andc r1,r2,r3");
    assert_eq!(m.gpr(1), 0b0100);
    m.exec_asm("orc r1,r2,r3");
    assert_eq!(m.gpr(1), 0b1100 | !0b1010u64);
    m.exec_asm("andi. r1,r2,12");
    assert_eq!(m.gpr(1), 12);
    assert_eq!(m.cr() >> 28, 0b0100, "CR0 = GT for positive result");
    m.exec_asm("oris r1,r2,1");
    assert_eq!(m.gpr(1), 0b1100 | 0x10000);
}

#[test]
fn extend_and_count() {
    let mut m = Mini::default();
    m.set_gpr(2, 0x80);
    m.exec_asm("extsb r1,r2");
    assert_eq!(m.gpr(1) as i64, -128);
    m.set_gpr(2, 0x8000);
    m.exec_asm("extsh r1,r2");
    assert_eq!(m.gpr(1) as i64, -32768);
    m.set_gpr(2, 0x8000_0000);
    m.exec_asm("extsw r1,r2");
    assert_eq!(m.gpr(1) as i64, i64::from(i32::MIN));
    m.set_gpr(2, 1);
    m.exec_asm("cntlzw r1,r2");
    assert_eq!(m.gpr(1), 31);
    m.exec_asm("cntlzd r1,r2");
    assert_eq!(m.gpr(1), 63);
    m.set_gpr(2, 0x0103_0307);
    m.exec_asm("popcntb r1,r2");
    assert_eq!(m.gpr(1), 0x0102_0203);
}

#[test]
fn rotates() {
    let mut m = Mini::default();
    m.set_gpr(2, 0x1234_5678);
    // rlwinm r1,r2,8,0,31: rotate left by 8 within the word, both halves.
    m.exec_asm("rlwinm r1,r2,8,0,31");
    assert_eq!(m.gpr(1), 0x3456_7812_3456_7812 & 0x0000_0000_FFFF_FFFF);
    // Extract a nibble: rlwinm r1,r2,4,28,31 == (r2 >> 28) & 0xF
    m.exec_asm("rlwinm r1,r2,4,28,31");
    assert_eq!(m.gpr(1), 0x1);
    // rldicl r1,r2,0,48 clears the high 48 bits.
    m.set_gpr(2, 0xFFFF_FFFF_FFFF_1234);
    m.exec_asm("rldicl r1,r2,0,48");
    assert_eq!(m.gpr(1), 0x1234);
    // rldicr r1,r2,16,47 rotates left 16 and keeps the top 48 bits.
    m.exec_asm("rldicr r1,r2,16,47");
    assert_eq!(m.gpr(1), 0xFFFF_FFFF_1234_0000 & !0xFFFF);
}

#[test]
fn shifts() {
    let mut m = Mini::default();
    m.set_gpr(2, 0x8000_0000);
    m.set_gpr(3, 4);
    m.exec_asm("srw r1,r2,r3");
    assert_eq!(m.gpr(1), 0x0800_0000);
    m.exec_asm("slw r1,r2,r3");
    assert_eq!(m.gpr(1), 0); // shifted out of the word
    m.exec_asm("sraw r1,r2,r3");
    assert_eq!(m.gpr(1), 0xFFFF_FFFF_F800_0000);
    m.exec_asm("srawi r1,r2,31");
    assert_eq!(m.gpr(1), u64::MAX);
    // CA set: negative with 1-bits shifted out.
    m.set_gpr(2, 0x8000_0001);
    m.exec_asm("srawi r1,r2,1");
    assert_eq!(m.reg(Reg::Xer).bit(34), ppc_bits::Bit::One, "CA");
    m.set_gpr(2, 1u64 << 63);
    m.set_gpr(3, 63);
    m.exec_asm("srad r1,r2,r3");
    assert_eq!(m.gpr(1), u64::MAX);
    m.exec_asm("sradi r1,r2,1");
    assert_eq!(m.gpr(1), 0xC000_0000_0000_0000);
    m.exec_asm("sld r1,r2,r3");
    assert_eq!(m.gpr(1), 0);
    m.set_gpr(2, 0xF0);
    m.exec_asm("srd r1,r2,r3");
    assert_eq!(m.gpr(1), 0);
}

#[test]
fn compares_set_fields() {
    let mut m = Mini::default();
    m.set_gpr(2, 5);
    m.set_gpr(3, 9);
    m.exec_asm("cmpw r2,r3");
    assert_eq!(m.cr() >> 28, 0b1000, "LT");
    m.exec_asm("cmp cr7,1,r3,r2");
    assert_eq!(m.cr() & 0xF, 0b0100, "GT in CR7");
    // Unsigned: -1 > 1.
    m.set_gpr(2, u64::MAX);
    m.set_gpr(3, 1);
    m.exec_asm("cmpld cr1,r2,r3");
    assert_eq!((m.cr() >> 24) & 0xF, 0b0100, "GT unsigned");
    m.exec_asm("cmpd cr1,r2,r3");
    assert_eq!((m.cr() >> 24) & 0xF, 0b1000, "LT signed");
    m.exec_asm("cmpwi r3,1");
    assert_eq!(m.cr() >> 28, 0b0010, "EQ");
    m.exec_asm("cmplwi cr2,r2,0xffff");
    assert_eq!((m.cr() >> 20) & 0xF, 0b0100, "GT");
}

#[test]
fn loads_and_stores() {
    let mut m = Mini::default();
    m.set_gpr(1, 0x1000);
    m.set_gpr(7, 0xDEAD_BEEF_CAFE_F00D);
    m.exec_asm("std r7,0(r1)");
    m.exec_asm("ld r8,0(r1)");
    assert_eq!(m.gpr(8), 0xDEAD_BEEF_CAFE_F00D);
    m.exec_asm("lwz r9,4(r1)");
    assert_eq!(m.gpr(9), 0xCAFE_F00D);
    m.exec_asm("lhz r9,6(r1)");
    assert_eq!(m.gpr(9), 0xF00D);
    m.exec_asm("lbz r9,7(r1)");
    assert_eq!(m.gpr(9), 0x0D);
    m.exec_asm("lha r9,6(r1)");
    assert_eq!(m.gpr(9) as i64, i64::from(0xF00Du16 as i16));
    m.exec_asm("lwa r9,4(r1)");
    assert_eq!(m.gpr(9) as i64, i64::from(0xCAFE_F00Du32 as i32));
    // Indexed and byte-reversed forms.
    m.set_gpr(2, 4);
    m.exec_asm("lwzx r9,r1,r2");
    assert_eq!(m.gpr(9), 0xCAFE_F00D);
    m.exec_asm("lwbrx r9,r1,r2");
    assert_eq!(m.gpr(9), 0x0DF0_FECA);
    m.exec_asm("sthbrx r7,r1,r2");
    m.exec_asm("lhz r9,4(r1)");
    assert_eq!(m.gpr(9), 0x0DF0);
}

#[test]
fn update_forms_write_base() {
    let mut m = Mini::default();
    m.set_gpr(1, 0x1000);
    m.set_gpr(7, 42);
    m.exec_asm("stwu r7,8(r1)");
    assert_eq!(m.gpr(1), 0x1008, "base updated");
    // The store went to the *new* address; load it back via the updated
    // base (and check the base is rewritten again).
    m.exec_asm("lwzu r8,0(r1)");
    assert_eq!(m.gpr(8), 42);
    assert_eq!(m.gpr(1), 0x1008);
    m.exec_asm("lwzux r9,r1,r1");
    assert_eq!(m.gpr(1), 0x2010, "indexed update");
}

#[test]
fn lmw_stmw() {
    let mut m = Mini::default();
    m.set_gpr(1, 0x2000);
    m.set_gpr(29, 0x11111111);
    m.set_gpr(30, 0x22222222);
    m.set_gpr(31, 0x33333333);
    m.exec_asm("stmw r29,0(r1)");
    m.exec_asm("lwz r5,4(r1)");
    assert_eq!(m.gpr(5), 0x22222222);
    m.set_gpr(29, 0);
    m.set_gpr(30, 0);
    m.set_gpr(31, 0);
    m.exec_asm("lmw r29,0(r1)");
    assert_eq!(m.gpr(29), 0x11111111);
    assert_eq!(m.gpr(30), 0x22222222);
    assert_eq!(m.gpr(31), 0x33333333);
}

#[test]
fn lswi_stswi() {
    let mut m = Mini::default();
    m.set_gpr(1, 0x3000);
    m.set_gpr(5, 0xAABBCCDD);
    m.set_gpr(6, 0x11223344);
    m.exec_asm("stswi r5,r1,7"); // 7 bytes: AABBCCDD 112233
    m.exec_asm("lwz r9,0(r1)");
    assert_eq!(m.gpr(9), 0xAABBCCDD);
    m.exec_asm("lwz r9,4(r1)");
    assert_eq!(m.gpr(9), 0x11223300);
    m.exec_asm("lswi r10,r1,7");
    assert_eq!(m.gpr(10), 0xAABBCCDD);
    assert_eq!(m.gpr(11), 0x11223300, "tail zero-padded");
}

#[test]
fn branches() {
    let mut m = Mini {
        cia: 0x100,
        ..Default::default()
    };
    m.exec(&parse_asm("b 16").unwrap());
    assert_eq!(m.cia, 0x110);
    // bl sets LR.
    m.exec(&parse_asm("bl -16").unwrap());
    assert_eq!(m.cia, 0x100);
    assert_eq!(m.reg(Reg::Lr).to_u64(), Some(0x114));
    // Conditional: CR bit 2 (EQ of CR0) set → taken.
    m.set_gpr(2, 0);
    m.exec_asm("cmpwi r2,0");
    let pc = m.cia;
    m.exec(&parse_asm("beq 8").unwrap());
    assert_eq!(m.cia, pc + 8);
    // Not taken → falls through.
    m.exec_asm("cmpwi r2,1");
    let pc = m.cia;
    m.exec(&parse_asm("beq 8").unwrap());
    assert_eq!(m.cia, pc + 4);
    // blr.
    m.set_reg(Reg::Lr, Bv::from_u64(0x4000, 64));
    m.exec(&parse_asm("blr").unwrap());
    assert_eq!(m.cia, 0x4000);
    // bdnz decrements CTR and branches while non-zero.
    m.set_reg(Reg::Ctr, Bv::from_u64(2, 64));
    let pc = m.cia;
    m.exec(&parse_asm("bdnz -8").unwrap());
    assert_eq!(m.cia, pc - 8);
    assert_eq!(m.reg(Reg::Ctr).to_u64(), Some(1));
    let pc = m.cia;
    m.exec(&parse_asm("bdnz -8").unwrap());
    assert_eq!(m.cia, pc + 4, "CTR hit zero: fall through");
    // bctr.
    m.set_reg(Reg::Ctr, Bv::from_u64(0x5000, 64));
    m.exec(&parse_asm("bctr").unwrap());
    assert_eq!(m.cia, 0x5000);
}

#[test]
fn cr_field_moves() {
    let mut m = Mini::default();
    m.set_gpr(5, 0x0000_00F0); // fields: cr6 = 0xF
    m.exec_asm("mtocrf cr6,r5");
    assert_eq!((m.cr() >> 4) & 0xF, 0xF);
    assert_eq!(m.cr() & 0xF, 0, "other fields untouched");
    m.exec_asm("mfocrf r6,cr6");
    // Only field 6 is defined in the result.
    let v = m.reg(Reg::Gpr(6));
    assert_eq!(v.slice(56, 4).to_u64(), Some(0xF));
    assert!(v.slice(32, 4).has_undef());
    // mtcrf with full mask + mfcr round-trips.
    m.set_gpr(5, 0x1234_5678);
    m.exec_asm("mtcrf 255,r5");
    m.exec_asm("mfcr r7");
    assert_eq!(m.gpr(7), 0x1234_5678);
    m.exec_asm("mcrf cr0,cr7");
    assert_eq!(m.cr() >> 28, 0x8);
}

#[test]
fn cr_logical_bit_ops() {
    let mut m = Mini::default();
    m.set_gpr(5, 0xFFFF_FFFF);
    m.exec_asm("mtcrf 255,r5");
    m.exec_asm("crxor 0,0,0");
    assert_eq!(m.cr() >> 31, 0, "bit 0 cleared");
    m.exec_asm("crnor 1,0,0");
    assert_eq!((m.cr() >> 30) & 1, 1);
    m.exec_asm("crandc 2,1,0");
    assert_eq!((m.cr() >> 29) & 1, 1);
}

#[test]
fn spr_moves() {
    let mut m = Mini::default();
    m.set_gpr(3, 0xABCD);
    m.exec_asm("mtlr r3");
    assert_eq!(m.reg(Reg::Lr).to_u64(), Some(0xABCD));
    m.exec_asm("mflr r4");
    assert_eq!(m.gpr(4), 0xABCD);
    m.exec_asm("mtctr r3");
    m.exec_asm("mfctr r5");
    assert_eq!(m.gpr(5), 0xABCD);
    m.exec_asm("mtxer r3");
    m.exec_asm("mfxer r6");
    assert_eq!(m.gpr(6), 0xABCD);
}

#[test]
fn larx_stcx_success_path() {
    let mut m = Mini::default();
    m.set_gpr(1, 0x1000);
    m.set_gpr(5, 7);
    m.exec_asm("stw r5,0(r1)");
    m.exec_asm("lwarx r6,r0,r1");
    assert_eq!(m.gpr(6), 7);
    m.set_gpr(7, 9);
    m.exec_asm("stwcx. r7,r0,r1");
    // Mini always reports success: CR0.EQ set.
    assert_eq!((m.cr() >> 28) & 0b0010, 0b0010, "EQ on success");
    m.exec_asm("lwz r8,0(r1)");
    assert_eq!(m.gpr(8), 9);
}

// ----- footprints -------------------------------------------------------

#[test]
fn branch_always_reads_no_cr() {
    // BO[0]=1 ("branch always"): no CR read, hence no false dependency.
    let sem = Arc::new(semantics(&parse_asm("blr").unwrap()));
    let fp = analyze(&sem);
    assert!(fp.regs_in.iter().all(|s| s.reg != Reg::Cr));
    assert!(fp.regs_in.contains(&Reg::Lr.whole()));
}

#[test]
fn bc_reads_single_cr_bit() {
    let sem = Arc::new(semantics(&parse_asm("beq 8").unwrap()));
    let fp = analyze(&sem);
    assert!(fp.regs_in.contains(&RegSlice::new(Reg::Cr, 2, 1)));
    assert_eq!(
        fp.regs_in.iter().filter(|s| s.reg == Reg::Cr).count(),
        1,
        "exactly one CR bit"
    );
    // Both fall-through and target NIAs.
    assert_eq!(fp.nias.len(), 2);
}

#[test]
fn cmp_reads_low_words_and_so() {
    // Fig. 3: regs_in of `cmp` = {XER.SO, GPR5[32..63], GPR7[32..63]}.
    let sem = Arc::new(semantics(&parse_asm("cmpw r5,r7").unwrap()));
    let fp = analyze(&sem);
    assert!(fp.regs_in.contains(&RegSlice::new(Reg::Gpr(5), 32, 32)));
    assert!(fp.regs_in.contains(&RegSlice::new(Reg::Gpr(7), 32, 32)));
    assert!(fp.regs_in.contains(&RegSlice::new(Reg::Xer, 32, 1)));
    assert!(fp.regs_out.contains(&RegSlice::new(Reg::Cr, 0, 4)));
}

#[test]
fn mtocrf_mfocrf_disjoint_fields() {
    // §2.1.4 / MP+sync+addr-cr: write to CR3, read from CR4 — no overlap.
    let w = Arc::new(semantics(&parse_asm("mtocrf cr3,r5").unwrap()));
    let r = Arc::new(semantics(&parse_asm("mfocrf r6,cr4").unwrap()));
    let wf = analyze(&w);
    let rf = analyze(&r);
    let write_slices: Vec<_> = wf.regs_out.iter().filter(|s| s.reg == Reg::Cr).collect();
    let read_slices: Vec<_> = rf.regs_in.iter().filter(|s| s.reg == Reg::Cr).collect();
    assert_eq!(write_slices.len(), 1);
    assert_eq!(read_slices.len(), 1);
    assert!(
        !write_slices[0].overlaps(read_slices[0]),
        "CR3 write must not intersect CR4 read"
    );
}

#[test]
fn store_addr_taint_excludes_data() {
    let sem = Arc::new(semantics(&parse_asm("stwx r7,r1,r2").unwrap()));
    let fp = analyze(&sem);
    assert!(fp.addr_regs.contains(&Reg::Gpr(1).whole()));
    assert!(fp.addr_regs.contains(&Reg::Gpr(2).whole()));
    assert!(!fp.addr_regs.contains(&RegSlice::new(Reg::Gpr(7), 32, 32)));
}

#[test]
fn inventory_counts() {
    let inv = inventory();
    // The paper's §4.1: 154 user-mode branch + fixed-point instructions
    // (their XML extraction); our hand-built fragment is close but counts
    // its own scope. The invariant we pin: well over 100 underlying
    // instructions, with variant expansion ≥ 190 encodings.
    assert!(inv.len() >= 120, "got {}", inv.len());
    let variants: u32 = inv.iter().map(|e| e.variants).sum();
    assert!(variants >= 190, "got {variants}");
    // No duplicate mnemonics.
    let mut names: Vec<_> = inv.iter().map(|e| e.mnemonic).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), inv.len());
}

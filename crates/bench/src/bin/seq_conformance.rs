//! E1 — the sequential validation run (paper §7: "6984 tests … all of
//! these instructions pass all their tests").
//!
//! Generates partly-random single-instruction tests for every modelled
//! instruction (exhaustive over single-bit mode fields) and runs each in
//! the golden sequential machine and in the concurrency model's
//! sequential mode, comparing final states up to undef.
//!
//! Arguments: `[per_config]` (default 8) and `[seed]` (default 2015).

use ppc_seqref::{generate_tests, run_conformance};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let per_config: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2015);

    let tests = generate_tests(seed, per_config);
    let mut mnemonics: Vec<String> = tests.iter().map(|t| t.instr.mnemonic()).collect();
    mnemonics.sort();
    mnemonics.dedup();
    println!(
        "generated {} tests over {} distinct instruction encodings (seed {seed})",
        tests.len(),
        mnemonics.len()
    );
    let t0 = Instant::now();
    let report = run_conformance(&tests);
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "{}/{} passed in {dt:.1}s ({:.1} tests/s)",
        report.passed,
        report.total,
        report.total as f64 / dt
    );
    for f in &report.failures {
        println!("FAIL: {f}");
    }
    if !report.all_passed() {
        std::process::exit(1);
    }
    println!("all instructions pass all their tests");
}

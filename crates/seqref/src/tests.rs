//! Tests for the sequential reference machine and the conformance
//! harness (a reduced-size run; the full E1 experiment runs via the
//! `seq_conformance` binary).

use crate::machine::{MachineState, SeqMachine};
use crate::testgen::{generate_tests, run_conformance};
use ppc_bits::Bv;
use ppc_idl::Reg;
use ppc_isa::parse_asm;

fn machine(prog: &[&str]) -> SeqMachine {
    let instrs: Vec<_> = prog.iter().map(|s| parse_asm(s).expect("asm")).collect();
    SeqMachine::from_instrs(&instrs, 0x1_0000)
}

#[test]
fn straight_line_arithmetic() {
    let mut m = machine(&["li r1,6", "li r2,7", "mullw r3,r1,r2"]);
    let n = m.run(100).expect("runs");
    assert_eq!(n, 3);
    assert_eq!(m.state.reg(Reg::Gpr(3)).to_u64(), Some(42));
}

#[test]
fn loop_runs_to_completion() {
    let mut m = machine(&["li r1,10", "mtctr r1", "li r2,0", "addi r2,r2,3", "bdnz -4"]);
    m.run(200).expect("runs");
    assert_eq!(m.state.reg(Reg::Gpr(2)).to_u64(), Some(30));
}

#[test]
fn memory_round_trip() {
    let mut m = machine(&["li r5,77", "stw r5,0(r1)", "lwz r6,0(r1)"]);
    m.state.regs.insert(Reg::Gpr(1), Bv::from_u64(0x8000, 64));
    m.run(100).expect("runs");
    assert_eq!(m.state.reg(Reg::Gpr(6)).to_u64(), Some(77));
}

#[test]
fn branch_exits_program() {
    // b +16 jumps past the end: the machine must stop cleanly.
    let mut m = machine(&["b 16"]);
    let n = m.run(10).expect("runs");
    assert_eq!(n, 1);
    assert_eq!(m.cia, 0x1_0000 + 16);
}

#[test]
fn compatibility_up_to_undef() {
    let mut a = MachineState::default();
    let mut b = MachineState::default();
    a.regs.insert(Reg::Gpr(1), Bv::from_u64(5, 64));
    b.regs.insert(Reg::Gpr(1), Bv::undef(64));
    assert!(a.compatible(&b), "undef matches anything");
    b.regs.insert(Reg::Gpr(2), Bv::from_u64(1, 64));
    assert!(!a.compatible(&b), "defined divergence detected");
}

#[test]
fn generator_covers_the_isa() {
    let tests = generate_tests(7, 1);
    // One state per shape still covers > 150 distinct encodings.
    let mut mnemonics: Vec<String> = tests.iter().map(|t| t.instr.mnemonic()).collect();
    mnemonics.sort();
    mnemonics.dedup();
    assert!(
        mnemonics.len() >= 150,
        "got {} distinct mnemonics",
        mnemonics.len()
    );
}

#[test]
fn conformance_smoke_run() {
    // A small differential run: every generated test must agree between
    // the golden machine and the model's sequential mode.
    let tests: Vec<_> = generate_tests(42, 1).into_iter().take(60).collect();
    let report = run_conformance(&tests);
    assert!(
        report.all_passed(),
        "{} of {} failed:\n{}",
        report.total - report.passed,
        report.total,
        report.failures.join("\n")
    );
}

//! The `oracled` serve loop: a std `TcpListener` accept thread plus
//! one handler thread per connection, all answering from one shared
//! [`Oracle`].
//!
//! Liveness and shutdown:
//!
//! - The accept loop polls a non-blocking listener so a `shutdown`
//!   request (or [`ServerHandle::shutdown`]) is noticed promptly; it
//!   then stops accepting and joins every connection thread.
//! - Connection threads read with a short socket timeout and only honor
//!   the shutdown flag **between frames**: a frame whose header has
//!   started arriving is always read to completion and answered, so a
//!   graceful shutdown never tears an in-flight request. In-flight
//!   explorations likewise run to completion (and land in the store).
//! - A protocol violation (torn frame, sequence gap, oversized length)
//!   drops that connection only; the server keeps serving others.

use crate::oracle::Oracle;
use crate::proto::{
    decode_query, encode_stats, write_frame, Frame, SeqCheck, MAX_FRAME, REQ_QUERY, REQ_SHUTDOWN,
    REQ_STATS, RESP_ERROR, RESP_RESULT, RESP_SHUTDOWN_ACK, RESP_STATS,
};
use ppc_litmus::Job;
use ppc_model::net::{is_timeout, Conn, Listener, NetParams};
use std::io::{self, Read};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Accept-loop poll period while waiting for connections.
const ACCEPT_POLL: Duration = Duration::from_millis(25);
/// Read-timeout applied to connection sockets: the granularity at
/// which an idle connection notices the shutdown flag.
const CONN_POLL_MS: u64 = 100;

/// Server tuning.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:0` (OS-assigned port, read it
    /// back from [`ServerHandle::port`]).
    pub addr: String,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
        }
    }
}

/// A running server. Dropping the handle shuts the server down and
/// joins its threads.
pub struct ServerHandle {
    port: u16,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound TCP port.
    #[must_use]
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Whether shutdown has been requested (by a client's `shutdown`
    /// frame or [`ServerHandle::shutdown`]).
    #[must_use]
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Request shutdown and wait for the accept loop and every
    /// connection thread to finish.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Block until the server stops (e.g. a client sent `shutdown`).
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind and start serving. Returns as soon as the listener is bound —
/// the port is immediately connectable.
///
/// # Errors
///
/// Propagates bind errors.
pub fn serve(cfg: &ServerConfig, oracle: Arc<Oracle>) -> io::Result<ServerHandle> {
    let listener = Listener::bind_tcp(cfg.addr.as_str())?;
    let port = listener
        .tcp_port()
        .ok_or_else(|| io::Error::other("no TCP port"))?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let accept_thread = std::thread::spawn(move || {
        let mut conns: Vec<JoinHandle<()>> = Vec::new();
        while !flag.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok(conn) => {
                    let oracle = Arc::clone(&oracle);
                    let flag = Arc::clone(&flag);
                    conns.push(std::thread::spawn(move || {
                        // A broken connection is that client's problem;
                        // the error is logged and the server lives on.
                        if let Err(e) = handle_conn(conn, &oracle, &flag) {
                            eprintln!("oracled: connection error: {e}");
                        }
                    }));
                }
                Err(e) if is_timeout(&e) => std::thread::sleep(ACCEPT_POLL),
                Err(e) => {
                    eprintln!("oracled: accept error: {e}");
                    std::thread::sleep(ACCEPT_POLL);
                }
            }
            conns.retain(|c| !c.is_finished());
        }
        for c in conns {
            let _ = c.join();
        }
    });
    Ok(ServerHandle {
        port,
        shutdown,
        accept_thread: Some(accept_thread),
    })
}

/// Read exactly `buf.len()` bytes, riding out the poll timeout.
/// `allow_idle_exit` (header reads only) lets the loop give up when
/// the shutdown flag rises *before any byte arrived* — mid-frame, the
/// frame is always finished.
enum PolledRead {
    Full,
    /// Clean EOF before any byte.
    Eof,
    /// Shutdown observed while idle.
    Shutdown,
}

fn read_full_polled(
    conn: &mut Conn,
    buf: &mut [u8],
    flag: &AtomicBool,
    allow_idle_exit: bool,
) -> io::Result<PolledRead> {
    let mut filled = 0;
    while filled < buf.len() {
        match conn.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(PolledRead::Eof);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "torn frame from client",
                ));
            }
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => {
                if filled == 0 && allow_idle_exit && flag.load(Ordering::Relaxed) {
                    return Ok(PolledRead::Shutdown);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(PolledRead::Full)
}

/// Read one frame with shutdown polling at the frame boundary.
fn read_frame_polled(conn: &mut Conn, flag: &AtomicBool) -> io::Result<Option<Frame>> {
    let mut lenbuf = [0u8; 4];
    match read_full_polled(conn, &mut lenbuf, flag, true)? {
        PolledRead::Eof | PolledRead::Shutdown => return Ok(None),
        PolledRead::Full => {}
    }
    let len = u32::from_le_bytes(lenbuf) as usize;
    if !(9..=MAX_FRAME).contains(&len) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame length {len}"),
        ));
    }
    let mut rest = vec![0u8; len];
    match read_full_polled(conn, &mut rest, flag, false)? {
        PolledRead::Full => {}
        PolledRead::Eof | PolledRead::Shutdown => {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "torn frame from client",
            ));
        }
    }
    Ok(Some(Frame {
        seq: u64::from_le_bytes(rest[..8].try_into().expect("8 bytes")),
        tag: rest[8],
        body: rest[9..].to_vec(),
    }))
}

/// Serve one connection until EOF, shutdown, or a protocol error.
fn handle_conn(mut conn: Conn, oracle: &Oracle, flag: &AtomicBool) -> io::Result<()> {
    // Short read timeout = shutdown-poll granularity. (Writes keep a
    // generous bound so a stalled client can't wedge a handler
    // forever; responses are small.)
    conn.apply_net(&NetParams::from_millis(CONN_POLL_MS, CONN_POLL_MS * 2))?;
    let mut seq_in = SeqCheck::default();
    let mut seq_out = 0u64;
    let mut send = |conn: &mut Conn, tag: u8, body: &[u8]| -> io::Result<()> {
        let r = write_frame(conn, seq_out, tag, body);
        seq_out += 1;
        r
    };
    loop {
        let Some(frame) = read_frame_polled(&mut conn, flag)? else {
            return Ok(()); // clean EOF or idle shutdown
        };
        seq_in.check(frame.seq)?;
        match frame.tag {
            REQ_QUERY => {
                let req = match decode_query(&frame.body) {
                    Ok(req) => req,
                    Err(e) => {
                        send(&mut conn, RESP_ERROR, format!("bad query: {e}").as_bytes())?;
                        continue;
                    }
                };
                match Job::from_source(&req.source, req.expect, &req.pinned_by) {
                    Ok(job) => {
                        let out = oracle.query(&job, &req.budget);
                        let mut body = Vec::with_capacity(1 + out.line.len());
                        body.push(u8::from(out.cached));
                        body.extend_from_slice(out.line.as_bytes());
                        send(&mut conn, RESP_RESULT, &body)?;
                    }
                    Err(e) => {
                        send(
                            &mut conn,
                            RESP_ERROR,
                            format!("parse error: {e}").as_bytes(),
                        )?;
                    }
                }
            }
            REQ_STATS => {
                send(&mut conn, RESP_STATS, &encode_stats(&oracle.stats()))?;
            }
            REQ_SHUTDOWN => {
                send(&mut conn, RESP_SHUTDOWN_ACK, b"")?;
                flag.store(true, Ordering::Relaxed);
                return Ok(());
            }
            tag => {
                send(
                    &mut conn,
                    RESP_ERROR,
                    format!("unknown request tag {tag:#04x}").as_bytes(),
                )?;
            }
        }
    }
}

//! Differential tests for copy-on-write successor generation.
//!
//! The CoW state layout (`Arc`-shared thread states, instruction
//! instances, and storage components, with `Arc::make_mut` on mutation
//! plus compute-once cached digests) must be *observably invisible*:
//! applying a transition to a state whose components are shared with a
//! predecessor must yield exactly the state that a fully independent
//! deep copy would yield — structurally equal, same digest, same
//! canonical bytes. The deep-copy baseline is built through the
//! canonical codec (`decode(encode(s))`), which produces a state
//! sharing *no* dynamic structure with the original (only the immutable
//! program cache), so a missed copy-on-write or a stale digest cache
//! shows up as a divergence here.

mod common;

use common::gen_program;
use ppcmem::bits::Prng;
use ppcmem::litmus::{build_system, parse};
use ppcmem::model::{CodecCtx, ModelParams, SystemState};

/// One step of the differential: for each enabled transition, apply it
/// both to the (Arc-sharing) `state` and to an independent deep clone,
/// and require identical results. Returns a random CoW successor to
/// continue the walk (so later states share structure across several
/// generations of predecessors).
fn check_state(state: &SystemState, ctx: &CodecCtx, rng: &mut Prng) -> Option<SystemState> {
    let deep = ctx.decode(&ctx.encode(state)).expect("state decodes");
    assert!(deep == *state, "deep clone differs before any transition");
    assert_eq!(deep.digest(), state.digest());

    let ts = state.enumerate_transitions();
    assert_eq!(deep.enumerate_transitions(), ts);
    // Enumeration-trace differential: the per-component transition
    // caches (possibly populated by ancestors sharing the same Arcs)
    // must reproduce exactly what a cache-bypassing full rescan
    // enumerates — per slot, not just as a flat list — so a missed
    // cache invalidation in a mutation funnel fails loudly here.
    let trace_cached = state.enumerate_traced();
    let trace_rescan = state.enumerate_rescan_traced();
    assert_eq!(
        trace_cached, trace_rescan,
        "cached enumeration diverged from the full-rescan reference"
    );
    let flat: Vec<_> = trace_cached
        .0
        .iter()
        .flatten()
        .copied()
        .map(ppcmem::model::Transition::Thread)
        .chain(
            trace_cached
                .1
                .iter()
                .copied()
                .map(ppcmem::model::Transition::Storage),
        )
        .collect();
    assert_eq!(
        flat, ts,
        "enumeration trace does not concatenate to enumerate_transitions"
    );
    if ts.is_empty() {
        return None;
    }
    for t in &ts {
        // CoW path: `state` still shares thread/storage Arcs with its
        // own predecessors, and `succ` will share whatever `t` leaves
        // untouched. Baseline path: `deep` owns everything uniquely, so
        // every make_mut is the refcount-1 in-place case.
        let succ = state.apply(t);
        let base = deep.apply(t);
        assert!(
            succ == base,
            "CoW-applied successor differs from deep-clone-then-apply: {t:?}"
        );
        assert_eq!(
            succ.digest(),
            base.digest(),
            "successor digests diverged (stale digest cache?): {t:?}"
        );
        // Canonical bytes must not depend on how much structure the
        // successor shares with its ancestors.
        assert_eq!(
            ctx.encode(&succ),
            ctx.encode(&base),
            "canonical bytes depend on Arc sharing: {t:?}"
        );
        // Advance-trace differential: the incremental dirty-instance
        // worklist must step exactly the instances the retained
        // full-rescan reference steps (a missed worklist seed would
        // silently skip a wake-up and only *sometimes* change finals;
        // the trace comparison catches it on every transition).
        let (succ_inc, trace_inc) = state.apply_traced(t);
        let (succ_ref, trace_ref) = state.apply_rescan_traced(t);
        assert!(
            succ_inc == succ && succ_ref == succ,
            "traced engines disagree with apply: {t:?}"
        );
        assert_eq!(
            trace_inc, trace_ref,
            "worklist advance trace diverged from the full-rescan reference: {t:?}"
        );
    }
    let pick = rng.gen_range(0..ts.len() as u32) as usize;
    Some(state.apply(&ts[pick]))
}

/// Walk a random exploration path, running the full differential at
/// every prefix state.
fn check_random_walk(initial: &SystemState, rng: &mut Prng, steps: usize) -> usize {
    let ctx = CodecCtx::for_state(initial);
    let mut state = initial.clone();
    let mut checked = 0;
    for _ in 0..=steps {
        checked += 1;
        match check_state(&state, &ctx, rng) {
            Some(next) => state = next,
            None => break,
        }
    }
    checked
}

#[test]
fn cow_successors_match_deep_clone_baseline_fuzz() {
    let mut rng = Prng::seed_from_u64(0xC0DE_CB0B_0000_0001);
    let params = ModelParams::default();
    let mut checked = 0;
    let mut rmw_seen = 0;
    for seed in 0..24u64 {
        let prog = gen_program(0xBEEF_0000 + seed);
        rmw_seen += usize::from(common::has_rmw(&prog));
        let test = parse(&prog.source).expect("generated program parses");
        let initial = build_system(&test, &params);
        checked += check_random_walk(&initial, &mut rng, 24);
    }
    assert!(
        checked > 200,
        "only {checked} states differentially checked"
    );
    assert!(
        rmw_seen > 0,
        "generator never produced a reservation pair; widen the seed range"
    );
}

/// Digest-cache soundness along a deep chain: a digest read early (and
/// cached) must equal a from-scratch recomputation by an independent
/// copy at every depth, even as ancestors sharing the same `Arc`s are
/// mutated into successors.
#[test]
fn cached_digests_stay_sound_down_a_shared_chain() {
    let params = ModelParams::default();
    let mut rng = Prng::seed_from_u64(0xD16E_5700);
    let prog = gen_program(0xBEEF_CAFE);
    let test = parse(&prog.source).expect("generated program parses");
    let initial = build_system(&test, &params);
    let ctx = CodecCtx::for_state(&initial);

    // Keep the whole chain alive so Arc refcounts stay > 1 and every
    // apply takes the genuine copy-on-write path (make_mut must clone).
    let mut chain: Vec<SystemState> = vec![initial];
    for _ in 0..40 {
        let state = chain.last().expect("non-empty");
        let digest_cached = state.digest(); // populate the cache
        let fresh = ctx.decode(&ctx.encode(state)).expect("decodes");
        assert_eq!(
            digest_cached,
            fresh.digest(),
            "cached digest differs from an independent recomputation"
        );
        let ts = state.enumerate_transitions();
        if ts.is_empty() {
            break;
        }
        let pick = rng.gen_range(0..ts.len() as u32) as usize;
        let next = state.apply(&ts[pick]);
        chain.push(next);
    }
    assert!(chain.len() > 5, "walk ended too early to test sharing");

    // Every ancestor must still equal its own round-trip: successors
    // mutating shared structure may never write through to it.
    for (depth, state) in chain.iter().enumerate() {
        let fresh = ctx.decode(&ctx.encode(state)).expect("decodes");
        assert!(
            fresh == *state,
            "ancestor at depth {depth} was mutated by a descendant"
        );
        assert_eq!(fresh.digest(), state.digest());
    }
}

/// The `debug_assertions` digest audit must catch a mutation that
/// bypasses the `thread_mut`/`inst_mut`/`storage_mut` funnels — the
/// ROADMAP's standing digest hazard. A stale cached digest silently
/// collides (or splits) visited-set entries, dropping states; the audit
/// turns that into a loud failure at successor-publish time.
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "stale cached digest")]
fn digest_audit_catches_funnel_bypass() {
    let params = ModelParams::default();
    let prog = gen_program(0xBEEF_0001);
    let test = parse(&prog.source).expect("generated program parses");
    let mut state = build_system(&test, &params);
    let _ = state.digest(); // populate every cache level
                            // Bypass the funnel: mutate a digested field through the Arc
                            // directly, without invalidating (the state is sole owner, so no
                            // CoW clone empties the cell for us).
    let th = std::sync::Arc::get_mut(&mut state.threads[0]).expect("sole owner");
    th.reservation = Some((0xdead, 4));
    let _ = state.digest(); // audit must detect the stale thread cell
}

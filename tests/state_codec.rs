//! Round-trip and cross-rebuild property tests for the canonical state
//! codec (`ppc_model::state_codec`).
//!
//! The codec underwrites the disk-spilling exploration store: a spilled
//! state must decode back to *exactly* the state that was spilled
//! (`decode(encode(s)) == s` under structural equality, same digest, and
//! identical successor behaviour), and — unlike the `Arc`-pointer-based
//! digests — its bytes must be identical across two *independently
//! built* systems for the same test, which is what makes resumable and
//! cross-machine exploration possible.
//!
//! States are drawn from seeded random exploration prefixes: start at a
//! litmus test's initial state and repeatedly apply a pseudo-randomly
//! chosen enabled transition, checking the codec contract at every
//! prefix. That visits "interesting" mid-exploration states (suspended
//! interpreter continuations, pending reads, uncommitted writes,
//! in-flight barriers, live reservations) rather than just initial and
//! quiescent ones.

use ppcmem::bits::Prng;
use ppcmem::litmus::{build_system, library, parse};
use ppcmem::model::{decode_state, encode_state, CodecCtx, ModelParams, SystemState};

/// Tests with varied machinery: plain loads/stores, barriers of every
/// flavour, dependencies, and the lwarx/stwcx. reservation path.
const SUBJECTS: &[&str] = &["MP+syncs", "LB+addrs", "PPOCA", "WRC+pos", "2+2W"];

/// A lock-style test exercising load-reserve/store-conditional, so the
/// codec round-trips reservations and pending conditional writes.
const RMW_SOURCE: &str = r"POWER RMW-CODEC
{
0:r1=x; 1:r1=x;
x=0;
}
 P0                | P1                ;
 lwarx r5,r0,r1    | lwarx r5,r0,r1    ;
 addi r5,r5,1      | addi r5,r5,1      ;
 stwcx. r5,r0,r1   | stwcx. r5,r0,r1   ;
exists (0:r5=1)
";

/// Walk `steps` random transitions from `state`, checking the round-trip
/// contract at every prefix state. Returns how many states were checked.
fn check_random_prefix(
    initial: &SystemState,
    ctx: &CodecCtx,
    rng: &mut Prng,
    steps: usize,
) -> usize {
    let mut state = initial.clone();
    let mut checked = 0;
    for _ in 0..=steps {
        let bytes = ctx.encode(&state);
        let back = ctx.decode(&bytes).expect("canonical bytes decode");
        assert!(
            back == state,
            "decode(encode(s)) != s after {checked} random transitions"
        );
        assert_eq!(
            back.digest(),
            state.digest(),
            "decoded state's digest diverged (shared structure not \
             resolved to the program cache)"
        );
        // Re-encoding the decoded state must reproduce the bytes.
        assert_eq!(
            ctx.encode(&back),
            bytes,
            "encode is not stable across a decode round trip"
        );
        // The decoded state must behave identically: same enabled
        // transitions, and applying the same one yields equal states.
        let ts = state.enumerate_transitions();
        assert_eq!(back.enumerate_transitions(), ts);
        checked += 1;
        if ts.is_empty() {
            break;
        }
        let pick = rng.gen_range(0..ts.len() as u32) as usize;
        let next = state.apply(&ts[pick]);
        let next_back = back.apply(&ts[pick]);
        assert!(
            next_back == next,
            "successors diverged after decode (transition {pick})"
        );
        state = next;
    }
    checked
}

#[test]
fn codec_round_trips_random_exploration_prefixes() {
    let params = ModelParams::default();
    let mut rng = Prng::seed_from_u64(0xC0DE_C0DE_0001);
    let mut total = 0;
    for name in SUBJECTS {
        let entry = library()
            .into_iter()
            .find(|e| e.name == *name)
            .unwrap_or_else(|| panic!("{name} in library"));
        let test = parse(entry.source).expect("library parses");
        let initial = build_system(&test, &params);
        let ctx = CodecCtx::for_state(&initial);
        for _ in 0..4 {
            total += check_random_prefix(&initial, &ctx, &mut rng, 40);
        }
    }
    assert!(total > 100, "only {total} prefix states checked");
}

#[test]
fn codec_round_trips_reservation_machinery() {
    // Spurious stcx failure on, so the walk can visit the failure branch.
    let params = ModelParams {
        allow_spurious_stcx_failure: true,
        ..ModelParams::default()
    };
    let test = parse(RMW_SOURCE).expect("RMW source parses");
    let initial = build_system(&test, &params);
    let ctx = CodecCtx::for_state(&initial);
    let mut rng = Prng::seed_from_u64(0xC0DE_C0DE_0002);
    let mut total = 0;
    for _ in 0..8 {
        total += check_random_prefix(&initial, &ctx, &mut rng, 60);
    }
    assert!(total > 50, "only {total} prefix states checked");
}

/// The cross-rebuild case the `Arc`-pointer digest cannot give: two
/// independently built systems for the same test, driven through the
/// same transition choices, encode to byte-identical strings at every
/// prefix — and a state encoded by one system decodes in the other's
/// codec context.
#[test]
fn encoding_is_stable_across_independent_builds() {
    // Subjects chosen so the walks populate every independently digested
    // storage component (PR 6's per-component cells): MP+syncs and PPOCA
    // for barriers / propagation lists / sync acknowledgements, 2+2W
    // (both with and without the partial-coherence transition enabled)
    // for the coherence order, and the lwarx/stwcx. source for
    // reservations and pending conditional writes.
    let coherence = ModelParams {
        coherence_commitments: true,
        ..ModelParams::default()
    };
    let spurious = ModelParams {
        allow_spurious_stcx_failure: true,
        ..ModelParams::default()
    };
    let from_library = |name: &str| {
        library()
            .into_iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("{name} in library"))
            .source
            .to_owned()
    };
    let subjects = [
        ("MP+syncs", from_library("MP+syncs"), ModelParams::default()),
        ("PPOCA", from_library("PPOCA"), ModelParams::default()),
        ("2+2W", from_library("2+2W"), ModelParams::default()),
        ("2+2W+pco", from_library("2+2W"), coherence),
        ("RMW", RMW_SOURCE.to_owned(), spurious),
    ];
    for (name, source, params) in subjects {
        let test = parse(&source).expect("library parses");
        // Two fully independent builds: separate programs, separate Arcs.
        let a0 = build_system(&test, &params);
        let b0 = build_system(&test, &params);
        assert!(
            !std::sync::Arc::ptr_eq(&a0.program, &b0.program),
            "builds must be independent for this test to mean anything"
        );
        let ctx_a = CodecCtx::for_state(&a0);
        let ctx_b = CodecCtx::for_state(&b0);

        let mut rng = Prng::seed_from_u64(0xC0DE_C0DE_0003);
        let (mut a, mut b) = (a0, b0);
        for step in 0..50 {
            let ea = ctx_a.encode(&a);
            let eb = ctx_b.encode(&b);
            assert_eq!(
                ea, eb,
                "{name}: cross-rebuild encoding diverged at step {step}"
            );
            // Cross-decode: bytes from build A decode in build B's
            // context (this is the distributed-exploration handshake).
            let b_from_a = ctx_b.decode(&ea).expect("cross-decode");
            assert!(b_from_a == b, "{name}: cross-decoded state diverged");

            let ts = a.enumerate_transitions();
            assert_eq!(ts, b.enumerate_transitions());
            if ts.is_empty() {
                break;
            }
            let pick = rng.gen_range(0..ts.len() as u32) as usize;
            a = a.apply(&ts[pick]);
            b = b.apply(&ts[pick]);
        }
    }
}

/// Canonical bytes are frozen across PRs: deterministic walks over
/// three subjects (barriers, coherence-heavy 2+2W, reservations) must
/// encode to the exact hex strings committed in
/// `tests/data/golden_encodings.txt`, captured before the
/// per-component-digest and inline-`Bv` refactors. A diff here means
/// the codec's byte format changed — which breaks resumable spills and
/// cross-machine exploration — not just an in-memory representation.
#[test]
fn canonical_bytes_match_committed_golden_encodings() {
    let golden = include_str!("data/golden_encodings.txt");
    let mut expected: std::collections::BTreeMap<(String, usize), String> =
        std::collections::BTreeMap::new();
    for line in golden.lines().filter(|l| !l.trim().is_empty()) {
        let mut parts = line.splitn(3, '|');
        let name = parts.next().expect("name").to_owned();
        let step: usize = parts.next().expect("step").parse().expect("step number");
        let hex = parts.next().expect("hex").to_owned();
        expected.insert((name, step), hex);
    }
    assert_eq!(expected.len(), 10, "golden file should hold 10 checkpoints");

    let subject_source = |name: &str| {
        library()
            .into_iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("{name} in library"))
            .source
            .to_owned()
    };
    let subjects = [
        (
            "MP+syncs",
            subject_source("MP+syncs"),
            ModelParams::default(),
        ),
        ("2+2W", subject_source("2+2W"), ModelParams::default()),
        (
            "RMW",
            RMW_SOURCE.to_owned(),
            ModelParams {
                allow_spurious_stcx_failure: true,
                ..ModelParams::default()
            },
        ),
    ];

    let mut seen = 0;
    for (name, source, params) in subjects {
        let test = parse(&source).expect("parses");
        let mut state = build_system(&test, &params);
        let ctx = CodecCtx::for_state(&state);
        // Deterministic walk: always apply the first enabled transition,
        // checkpointing every sixth step (same recipe that captured the
        // golden file).
        for step in 0..=18 {
            if step % 6 == 0 {
                let hex: String = ctx
                    .encode(&state)
                    .iter()
                    .map(|b| format!("{b:02x}"))
                    .collect();
                let want = expected
                    .get(&(name.to_owned(), step))
                    .unwrap_or_else(|| panic!("{name} step {step} missing from golden file"));
                assert_eq!(
                    &hex, want,
                    "{name} step {step}: canonical bytes diverged from the \
                     committed PR 3/4/5 encoding"
                );
                seen += 1;
            }
            let ts = state.enumerate_transitions();
            let Some(t) = ts.first() else { break };
            state = state.apply(t);
        }
    }
    assert_eq!(seen, 10, "every committed checkpoint must be re-checked");
}

/// The one-shot helpers agree with the context-based API, and malformed
/// inputs are rejected rather than trusted.
#[test]
fn convenience_helpers_and_error_paths() {
    let params = ModelParams::default();
    let entry = library()
        .into_iter()
        .find(|e| e.name == "MP")
        .expect("MP in library");
    let test = parse(entry.source).expect("parses");
    let state = build_system(&test, &params);

    let bytes = encode_state(&state);
    let back = decode_state(&bytes, &state.program, &params).expect("decodes");
    assert!(back == state);
    assert_eq!(back.digest(), state.digest());

    // Truncation is an error, not UB.
    assert!(decode_state(&bytes[..bytes.len() - 1], &state.program, &params).is_err());
    // A bad version byte is rejected.
    let mut bad = bytes.clone();
    bad[0] = 0xff;
    assert!(decode_state(&bad, &state.program, &params).is_err());
    // Trailing garbage is rejected.
    let mut long = bytes;
    long.push(0);
    assert!(decode_state(&long, &state.program, &params).is_err());
}

/// Corruption sweep: corrupting a valid encoding at *every* byte
/// position must yield either a [`ppcmem::bits::DecodeError`]… or some
/// decoded state — never a panic or a pathological allocation. Two
/// passes per position: a single `0xff` byte (tag/flag corruption), and
/// a spliced-in maximal LEB128 varint (`0xff…0x01`, ≈ `u64::MAX`) so
/// every varint field in the stream is, at some position, read as a
/// huge value. The interesting victims are the dense-arena instance
/// ids (PR 5): ids index the arena directly, so an unchecked corrupt
/// id would ask `InstanceArena::insert` for a near-`usize::MAX` slot
/// vector and abort the process instead of returning the codec's
/// contractual error — likewise the thread count's former up-front
/// `Vec::with_capacity`.
#[test]
fn corrupt_byte_sweep_never_panics_or_overallocates() {
    // A maximal unsigned LEB128 varint: nine continuation bytes and a
    // terminator, decoding to a value near u64::MAX.
    let huge_varint: [u8; 10] = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01];

    // Subjects chosen for stream variety, one per independently
    // digested storage component: MP (plain loads/stores), MP+syncs
    // (barrier events, barrier ids, sync acknowledgements in the
    // storage half), 2+2W with partial coherence commitments enabled
    // (coherence-order pairs in the encoded stream), and the
    // lwarx/stwcx. source (reservations and pending conditional
    // writes).
    let mut subjects: Vec<(String, ModelParams)> = ["MP", "MP+syncs"]
        .iter()
        .map(|name| {
            let entry = library()
                .into_iter()
                .find(|e| e.name == *name)
                .unwrap_or_else(|| panic!("{name} in library"));
            (entry.source.to_owned(), ModelParams::default())
        })
        .collect();
    let two_two_w = library()
        .into_iter()
        .find(|e| e.name == "2+2W")
        .expect("2+2W in library");
    subjects.push((
        two_two_w.source.to_owned(),
        ModelParams {
            coherence_commitments: true,
            ..ModelParams::default()
        },
    ));
    subjects.push((
        RMW_SOURCE.to_owned(),
        ModelParams {
            allow_spurious_stcx_failure: true,
            ..ModelParams::default()
        },
    ));

    for (source, params) in subjects {
        let test = parse(&source).expect("parses");
        let mut state = build_system(&test, &params);
        // Walk a while so threads carry live instruction instances and
        // the storage half carries real events (the initial state has
        // neither).
        for _ in 0..14 {
            let ts = state.enumerate_transitions();
            let Some(t) = ts.first() else { break };
            state = state.apply(t);
        }
        assert!(
            state.threads.iter().any(|th| !th.instances.is_empty()),
            "walk must produce instances for the sweep to corrupt their ids"
        );
        let bytes = encode_state(&state);
        for pos in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] = 0xff;
            // Err or a (different) state are both fine; an abort here
            // means a length/id field was trusted before validation.
            let _ = decode_state(&corrupt, &state.program, &params);

            let mut spliced = bytes[..pos].to_vec();
            spliced.extend_from_slice(&huge_varint);
            spliced.extend_from_slice(&bytes[pos..]);
            let _ = decode_state(&spliced, &state.program, &params);

            // Replace exactly one byte with the huge varint: when `pos`
            // is a single-byte varint field (instance ids, counts —
            // values < 128 encode in one byte), the rest of the stream
            // stays aligned and decodes as the original, so the huge
            // value itself reaches the consuming code rather than
            // derailing into a misalignment error first.
            let mut replaced = bytes[..pos].to_vec();
            replaced.extend_from_slice(&huge_varint);
            replaced.extend_from_slice(&bytes[pos + 1..]);
            let _ = decode_state(&replaced, &state.program, &params);
        }
    }
}

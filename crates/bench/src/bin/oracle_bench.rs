//! The persistent oracle benchmark runner: replays pinned litmus suites
//! and a pinned slice of the generated systematic families through both
//! exploration engines and emits a machine-readable `BENCH_oracle.json`
//! (states/sec, transitions/sec, peak resident, wall per suite), so
//! every PR records a perf trajectory for the hot path the whole system
//! is built around — successor generation.
//!
//! Usage:
//!
//! ```text
//! oracle_bench [--out PATH] [--smoke] [--threads N] [--repeat N]
//!              [--baseline PATH]
//! ```
//!
//! - `--out PATH`: where to write the JSON report (default
//!   `BENCH_oracle.json` in the current directory).
//! - `--smoke`: run only the small suite plus a few generated tests
//!   (CI's per-push artifact; seconds, not minutes).
//! - `--threads N`: worker count for the work-stealing engine entry
//!   (default 2; the sequential engine is always measured too).
//! - `--repeat N`: repeat each suite N times and keep the best wall
//!   clock per engine (default 1).
//! - `--baseline PATH`: read a previously committed report (the repo's
//!   `BENCH_oracle.json`) and print a states/sec comparison per
//!   suite × engine. **Report-only**: CI hardware is shared and noisy,
//!   so the comparison makes perf regressions visible per push without
//!   ever failing the build.
//!
//! Besides the two exhaustive engines a `sequential-reduced` entry runs
//! the sleep-set partial-order reduction; its rows carry a
//! `states_ratio_vs_sequential` field (reduced ÷ unreduced explored
//! states — the reduction's measured payoff, < 1.0 is a win).
//!
//! The runner is dependency-free: JSON is emitted by hand, timing is
//! `std::time::Instant`, and peak RSS comes from `/proc/self/status`
//! (`null` on platforms without it). The exhaustive engines are
//! cross-checked per test (finals, witness, state count); the reduced
//! engine is cross-checked on finals only — identical verdicts over a
//! smaller explored set is precisely its contract. A benchmark run that
//! diverges is a bug, not a slow day.

use bench::args::{arg_value, check_flags, parse_nonzero_arg};
use ppc_litmus::{generated_suite, library, parse, run_limited, LitmusEntry};
use ppc_model::{ExploreLimits, ModelParams};
use std::fmt::Write as _;
use std::time::Instant;

/// Flags taking a value (the next argument is consumed).
const VALUE_FLAGS: &[&str] = &["--out", "--threads", "--repeat", "--baseline"];
/// Boolean flags.
const BOOL_FLAGS: &[&str] = &["--smoke"];

const USAGE: &str = "oracle_bench [--out PATH] [--smoke] [--threads N] [--repeat N] \
     [--baseline PATH]";

/// The pinned small suite: quick tests, dominated by per-test setup.
const SMALL: &[&str] = &[
    "CoRR",
    "CoWW",
    "SB",
    "MP",
    "LB",
    "MP+sync+addr",
    "MP+sync+ctrl",
];

/// The pinned large suite: the biggest library state spaces; the
/// headline states/sec number comes from here.
const LARGE: &[&str] = &[
    "MP+syncs",
    "SB+syncs",
    "2+2W",
    "WRC+pos",
    "WRC+sync+addr",
    "PPOCA",
];

/// How many generated-family tests the pinned slice takes (in the
/// deterministic `generated_suite()` order).
const GENERATED_FULL: usize = 12;
const GENERATED_SMOKE: usize = 4;

struct TestRow {
    name: String,
    states: usize,
    transitions: usize,
    finals: usize,
    wall_s: f64,
    resident_peak: usize,
}

struct SuiteRow {
    suite: &'static str,
    engine: String,
    tests: Vec<TestRow>,
    wall_s: f64,
    /// Explored states of this engine ÷ the exhaustive sequential
    /// engine's, for reduced entries (`None` on exhaustive rows).
    states_ratio: Option<f64>,
}

impl SuiteRow {
    fn states(&self) -> usize {
        self.tests.iter().map(|t| t.states).sum()
    }
    fn transitions(&self) -> usize {
        self.tests.iter().map(|t| t.transitions).sum()
    }
    fn resident_peak(&self) -> usize {
        self.tests
            .iter()
            .map(|t| t.resident_peak)
            .max()
            .unwrap_or(0)
    }
}

/// One suite × engine entry of a committed baseline report.
struct BaselineRow {
    suite: String,
    engine: String,
    states_per_sec: f64,
}

/// Extract the `(suite, engine, states_per_sec)` triples from a report
/// this binary previously wrote. Dependency-free: the emitter two
/// screens down fixes the field order (`"suite"`, then `"engine"`, then
/// counters), so a field-order scan is exact for our own files — and a
/// malformed or foreign file just yields no rows (the comparison is
/// report-only, never load-bearing).
fn parse_baseline(text: &str) -> Vec<BaselineRow> {
    fn str_field(chunk: &str, key: &str) -> Option<String> {
        let tail = chunk.split(&format!("\"{key}\": \"")).nth(1)?;
        Some(tail.split('"').next()?.to_owned())
    }
    fn num_field(chunk: &str, key: &str) -> Option<f64> {
        let tail = chunk.split(&format!("\"{key}\": ")).nth(1)?;
        tail.split([',', '\n', '}'])
            .next()?
            .trim()
            .parse()
            .ok()
            // `f64::from_str` accepts "inf"/"NaN" spellings, which are
            // not JSON and would propagate through every ratio printed;
            // a baseline carrying them (from a run whose wall clock
            // rounded to zero) is rejected field-by-field.
            .filter(|v: &f64| v.is_finite())
    }
    text.split("\"suite\": ")
        .skip(1)
        .filter_map(|chunk| {
            Some(BaselineRow {
                // The chunk starts right at the suite's string literal.
                suite: chunk.split('"').nth(1)?.to_owned(),
                engine: str_field(chunk, "engine")?,
                states_per_sec: num_field(chunk, "states_per_sec")?,
            })
        })
        .collect()
}

/// A per-second rate over a measured wall clock, or `None` when the
/// interval is too short to carry a meaningful rate. Dividing by a wall
/// clock that rounds to (near) zero used to print absurd rates and
/// could emit `inf`/`NaN` — which is not JSON — into the report; an
/// unmeasurable rate is now `null` in the report and `n/a` on stderr.
fn rate(count: usize, wall_s: f64) -> Option<f64> {
    if wall_s < 1e-6 {
        return None;
    }
    let r = count as f64 / wall_s;
    r.is_finite().then_some(r)
}

/// `rate` formatted for stderr (`{:.0}` or `n/a`).
fn rate_str(count: usize, wall_s: f64) -> String {
    rate(count, wall_s).map_or_else(|| "n/a".to_owned(), |r| format!("{r:.0}"))
}

/// `rate` formatted as a JSON value (`{:.1}` or `null`).
fn rate_json(count: usize, wall_s: f64) -> String {
    rate(count, wall_s).map_or_else(|| "null".to_owned(), |r| format!("{r:.1}"))
}

/// Print the report-only states/sec comparison of this run against a
/// committed baseline report.
fn print_baseline_comparison(rows: &[SuiteRow], baseline_path: &str) {
    let Ok(text) = std::fs::read_to_string(baseline_path) else {
        eprintln!("oracle_bench: baseline {baseline_path} unreadable; skipping comparison");
        return;
    };
    let baseline = parse_baseline(&text);
    if baseline.is_empty() {
        eprintln!("oracle_bench: baseline {baseline_path} has no rows; skipping comparison");
        return;
    }
    eprintln!("states/sec vs baseline {baseline_path} (report-only, shared hardware is noisy):");
    for row in rows {
        let now = rate(row.states(), row.wall_s);
        let entry = baseline
            .iter()
            .find(|b| b.suite == row.suite && b.engine == row.engine);
        match (now, entry) {
            // `parse_baseline` only yields finite fields, so the ratio
            // below is finite whenever the baseline rate is positive.
            (Some(now), Some(b)) if b.states_per_sec > 0.0 => {
                let ratio = now / b.states_per_sec;
                eprintln!(
                    "  {:<20} {:<18} {:>9.0} now vs {:>9.0} baseline  ({:+.1}%)",
                    row.suite,
                    row.engine,
                    now,
                    b.states_per_sec,
                    (ratio - 1.0) * 100.0
                );
            }
            _ => eprintln!(
                "  {:<20} {:<18} {:>9} now ({})",
                row.suite,
                row.engine,
                rate_str(row.states(), row.wall_s),
                if entry.is_some() {
                    "unmeasurable or degenerate baseline"
                } else {
                    "no baseline entry"
                }
            ),
        }
    }
}

/// Peak resident set size of this process in KiB, if the platform
/// exposes it (`VmHWM` in `/proc/self/status`).
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Minimal JSON string escaping (suite/test names are ASCII, but stay
/// correct regardless).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Run one suite once through one engine configuration, cross-checking
/// nothing (the caller compares engines).
fn run_suite_once(
    suite: &'static str,
    engine: String,
    entries: &[&LitmusEntry],
    params: &ModelParams,
    limits: &ExploreLimits,
) -> SuiteRow {
    let mut tests = Vec::with_capacity(entries.len());
    let t0 = Instant::now();
    for e in entries {
        let test = parse(e.source).expect("pinned suite parses");
        let t1 = Instant::now();
        let r = run_limited(&test, params, limits);
        let wall = t1.elapsed().as_secs_f64();
        assert!(
            !r.stats.truncated,
            "{}: pinned bench test exhausted its budget — not a valid measurement",
            e.name
        );
        tests.push(TestRow {
            name: e.name.to_owned(),
            states: r.stats.states,
            transitions: r.stats.transitions,
            finals: r.finals,
            wall_s: wall,
            resident_peak: r.stats.resident_peak,
        });
    }
    SuiteRow {
        suite,
        engine,
        tests,
        wall_s: t0.elapsed().as_secs_f64(),
        states_ratio: None,
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    // Keep the worker hook even though oracle_bench has no --distributed
    // flag yet: any future distributed timing row re-executes this
    // binary, and a binary without the hook would run the whole bench
    // suite instead of becoming a worker.
    ppc_litmus::maybe_run_worker();
    let args: Vec<String> = std::env::args().skip(1).collect();
    check_flags("oracle_bench", &args, VALUE_FLAGS, BOOL_FLAGS, USAGE);
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_oracle.json".to_owned());
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads: usize = parse_nonzero_arg("oracle_bench", &args, "--threads", 2);
    let repeat: usize = parse_nonzero_arg("oracle_bench", &args, "--repeat", 1);
    let baseline = arg_value(&args, "--baseline");

    let lib = library();
    let gen = generated_suite();
    let pick = |names: &[&str]| -> Vec<&LitmusEntry> {
        names
            .iter()
            .map(|n| {
                lib.iter()
                    .find(|e| e.name == *n)
                    .unwrap_or_else(|| panic!("pinned test {n} missing from library"))
            })
            .collect()
    };
    let gen_take = if smoke {
        GENERATED_SMOKE
    } else {
        GENERATED_FULL
    };
    let mut suites: Vec<(&'static str, Vec<&LitmusEntry>)> = vec![("litmus-small", pick(SMALL))];
    if !smoke {
        suites.push(("litmus-large", pick(LARGE)));
    }
    suites.push(("generated-families", gen.iter().take(gen_take).collect()));

    let params = ModelParams::default();
    let reduced_params = ModelParams {
        sleep_sets: true,
        ..ModelParams::default()
    };
    // (name, params, limits, finals_only): `finals_only` marks engines
    // whose contract is identical verdicts over a *different* explored
    // set (the sleep-set reduction), excluded from the state/transition
    // equality check.
    let engines: Vec<(String, ModelParams, ExploreLimits, bool)> = vec![
        (
            "sequential".to_owned(),
            params.clone(),
            ExploreLimits {
                threads: 1,
                ..ExploreLimits::default()
            },
            false,
        ),
        (
            format!("work-stealing-{threads}"),
            params.clone(),
            ExploreLimits {
                threads,
                ..ExploreLimits::default()
            },
            false,
        ),
        (
            "sequential-reduced".to_owned(),
            reduced_params,
            ExploreLimits {
                threads: 1,
                ..ExploreLimits::default()
            },
            true,
        ),
    ];

    eprintln!(
        "oracle_bench: {} suites × {} engines, repeat {}{}",
        suites.len(),
        engines.len(),
        repeat,
        if smoke { " (smoke)" } else { "" }
    );

    let mut rows: Vec<SuiteRow> = Vec::new();
    for (suite, entries) in &suites {
        let mut per_engine: Vec<(SuiteRow, bool)> = Vec::new();
        for (engine, engine_params, limits, finals_only) in &engines {
            let mut best: Option<SuiteRow> = None;
            for _ in 0..repeat {
                let row = run_suite_once(suite, engine.clone(), entries, engine_params, limits);
                if best.as_ref().is_none_or(|b| row.wall_s < b.wall_s) {
                    best = Some(row);
                }
            }
            per_engine.push((best.expect("repeat >= 1"), *finals_only));
        }
        // Engine equivalence: identical states / transitions / finals
        // per test for the exhaustive engines (the exhaustive-
        // equivalence contract the whole PR hangs off — a fast engine
        // that explores a different envelope measures nothing); the
        // reduced engine must reproduce the finals exactly while
        // exploring fewer states, so it is checked on finals only and
        // its state-count ratio is recorded instead.
        let base_states = per_engine[0].0.states();
        {
            let (base, _) = &per_engine[0];
            for (other, finals_only) in &per_engine[1..] {
                for (a, b) in base.tests.iter().zip(&other.tests) {
                    if *finals_only {
                        assert_eq!(
                            (&a.name, a.finals),
                            (&b.name, b.finals),
                            "reduced-engine finals divergence in suite {suite}"
                        );
                    } else {
                        assert_eq!(
                            (&a.name, a.states, a.transitions, a.finals),
                            (&b.name, b.states, b.transitions, b.finals),
                            "engine divergence in suite {suite}"
                        );
                    }
                }
            }
        }
        for (mut row, finals_only) in per_engine {
            if finals_only && base_states > 0 {
                row.states_ratio = Some(row.states() as f64 / base_states as f64);
            }
            eprintln!(
                "  {:<20} {:<18} {:>9} states {:>12} transitions {:>9.2}s  {:>9} states/s{}",
                row.suite,
                row.engine,
                row.states(),
                row.transitions(),
                row.wall_s,
                rate_str(row.states(), row.wall_s),
                row.states_ratio
                    .map(|r| format!("  ({:.2}x states vs sequential)", r))
                    .unwrap_or_default(),
            );
            rows.push(row);
        }
    }

    // ---- JSON report ---------------------------------------------------
    let created = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let nproc = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"schema\": \"bench-oracle-v1\",");
    let _ = writeln!(j, "  \"created_unix\": {created},");
    let _ = writeln!(j, "  \"nproc\": {nproc},");
    let _ = writeln!(j, "  \"smoke\": {smoke},");
    let _ = writeln!(j, "  \"repeat\": {repeat},");
    match peak_rss_kb() {
        Some(kb) => {
            let _ = writeln!(j, "  \"peak_rss_kb\": {kb},");
        }
        None => {
            let _ = writeln!(j, "  \"peak_rss_kb\": null,");
        }
    }
    j.push_str("  \"suites\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let states = row.states();
        let transitions = row.transitions();
        j.push_str("    {\n");
        let _ = writeln!(j, "      \"suite\": {},", json_str(row.suite));
        let _ = writeln!(j, "      \"engine\": {},", json_str(&row.engine));
        let _ = writeln!(j, "      \"tests\": {},", row.tests.len());
        let _ = writeln!(j, "      \"states\": {states},");
        let _ = writeln!(j, "      \"transitions\": {transitions},");
        let _ = writeln!(j, "      \"wall_s\": {:.6},", row.wall_s);
        let _ = writeln!(
            j,
            "      \"states_per_sec\": {},",
            rate_json(states, row.wall_s)
        );
        let _ = writeln!(
            j,
            "      \"transitions_per_sec\": {},",
            rate_json(transitions, row.wall_s)
        );
        let _ = writeln!(
            j,
            "      \"resident_peak_states\": {},",
            row.resident_peak()
        );
        if let Some(r) = row.states_ratio {
            let _ = writeln!(j, "      \"states_ratio_vs_sequential\": {r:.4},");
        }
        j.push_str("      \"per_test\": [\n");
        for (k, t) in row.tests.iter().enumerate() {
            let _ = write!(
                j,
                "        {{\"name\": {}, \"states\": {}, \"transitions\": {}, \
                 \"finals\": {}, \"wall_s\": {:.6}}}",
                json_str(&t.name),
                t.states,
                t.transitions,
                t.finals,
                t.wall_s
            );
            j.push_str(if k + 1 == row.tests.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        j.push_str("      ]\n");
        j.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    j.push_str("  ]\n}\n");

    std::fs::write(&out_path, &j).expect("write benchmark report");
    eprintln!("wrote {out_path}");

    if let Some(baseline_path) = baseline {
        print_baseline_comparison(&rows, &baseline_path);
    }
}

#[cfg(test)]
mod tests {
    use super::{parse_baseline, rate, rate_json, rate_str};

    #[test]
    fn rate_is_none_for_unmeasurable_walls() {
        assert_eq!(rate(1000, 0.0), None);
        assert_eq!(rate(1000, 1e-9), None);
        assert_eq!(rate(0, 0.0), None);
        let r = rate(1000, 0.5).expect("measurable");
        assert!((r - 2000.0).abs() < 1e-9);
        assert_eq!(rate_str(1000, 0.0), "n/a");
        assert_eq!(rate_json(1000, 0.0), "null");
        assert_eq!(rate_json(1000, 0.5), "2000.0");
    }

    #[test]
    fn baseline_parser_rejects_non_finite_rates() {
        let report = r#"{
  "suites": [
    {
      "suite": "litmus-large",
      "engine": "sequential",
      "states_per_sec": 150000.0,
      "transitions_per_sec": 600000.0
    },
    {
      "suite": "litmus-small",
      "engine": "sequential",
      "states_per_sec": inf,
      "transitions_per_sec": NaN
    },
    {
      "suite": "generated-families",
      "engine": "sequential",
      "states_per_sec": null,
      "transitions_per_sec": null
    }
  ]
}
"#;
        let rows = parse_baseline(report);
        // Only the finite row survives; inf/NaN (parseable by
        // `f64::from_str` but not JSON) and null are rejected.
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].suite, "litmus-large");
        assert_eq!(rows[0].engine, "sequential");
        assert!((rows[0].states_per_sec - 150_000.0).abs() < 1e-9);
    }
}

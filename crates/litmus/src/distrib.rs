//! Running litmus tests on the multi-process distributed oracle
//! ([`ppc_model::distrib`]): job shipping, worker spawning, and the
//! error folding that turns any infrastructure failure into a
//! *truncated* (inconclusive) result instead of a panic or a silent
//! partial pass.
//!
//! The coordinator binds a Unix socket in a fresh collision-safe temp
//! directory, re-executes its own binary N times with
//! [`SOCKET_ENV`] pointing at the socket, and sends each accepted
//! connection a job frame: shard index, shard count, the encoded
//! [`ModelParams`], and the litmus source text. Each worker re-parses
//! and rebuilds the test locally — the canonical codec's digests are
//! rebuild-stable, so independently rebuilt workers agree on frame
//! bytes and shard ownership — and enters
//! [`ppc_model::distrib::run_worker`].
//!
//! Binaries that can be distributed coordinators call
//! [`maybe_run_worker`] first thing in `main`; test binaries expose a
//! `distrib_worker_shim` test and spawn themselves with
//! `["distrib_worker_shim", "--exact"]` as the worker args. Either
//! way, a process with [`SOCKET_ENV`] set never returns from
//! [`maybe_run_worker`].

use crate::library::LitmusEntry;
use crate::run::{build_system, observations, result_from_outcomes, CheckReport, RunResult};
use crate::test::{Expectation, LitmusTest};
use ppc_bits::{Reader, Writer};
use ppc_model::distrib::{
    self, load_checkpoint, read_blob, write_blob, Checkpoint, CoordinatorConfig, DistribOutcome,
    WorkerEnv,
};
use ppc_model::store::create_unique_temp_dir;
use ppc_model::{CodecCtx, ExplorationStats, ExploreLimits, Frame, ModelParams, Outcomes};
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Environment variable carrying the coordinator's socket path; its
/// presence turns a process into a distributed worker (see
/// [`maybe_run_worker`]).
pub const SOCKET_ENV: &str = "PPCMEM_DISTRIB_SOCKET";

/// How long the coordinator waits for all spawned workers to connect.
const ACCEPT_DEADLINE: Duration = Duration::from_secs(10);

/// Configuration for one distributed exploration.
#[derive(Clone, Debug, Default)]
pub struct DistribConfig {
    /// Worker processes (each owns one digest-prefix shard); `0` is
    /// treated as `1`.
    pub workers: usize,
    /// Checkpoint path: resumed from when it exists, written on a
    /// graceful budget/deadline stop, deleted on untruncated
    /// completion.
    pub checkpoint: Option<PathBuf>,
    /// Extra argv for the re-executed worker processes (empty for
    /// binaries that call [`maybe_run_worker`] in `main`; test binaries
    /// pass `["distrib_worker_shim", "--exact"]`).
    pub worker_args: Vec<String>,
    /// Extra environment for the workers — fault injection
    /// ([`ppc_model::distrib::DIE_AFTER_ENV`]) goes here, per-command,
    /// never via global `set_var`.
    pub worker_env: Vec<(String, String)>,
}

/// If [`SOCKET_ENV`] is set, run this process as a distributed worker
/// and **exit** (status 0 after a clean Result handoff, 1 on a
/// transport/parse failure — the coordinator sees the vanished socket
/// and degrades gracefully either way). A no-op when the variable is
/// absent.
pub fn maybe_run_worker() {
    let Ok(path) = std::env::var(SOCKET_ENV) else {
        return;
    };
    match worker_main(&path) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("ppcmem distributed worker: {e}");
            std::process::exit(1);
        }
    }
}

/// Connect back to the coordinator, receive the job, rebuild the test
/// locally, and run the worker loop to completion.
fn worker_main(sock_path: &str) -> io::Result<()> {
    let mut sock = UnixStream::connect(sock_path)?;
    let job = read_blob(&mut sock)?;
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let mut r = Reader::new(&job);
    let parse_job = |r: &mut Reader<'_>| -> Result<(usize, usize, ModelParams, Vec<u8>), ppc_bits::DecodeError> {
        let shard = r.usizev()?;
        let n_shards = r.usizev()?;
        let params = distrib::decode_params(r)?;
        let n = r.usizev()?;
        let source = r.bytes(n)?.to_vec();
        Ok((shard, n_shards, params, source))
    };
    let (shard, n_shards, params, source) =
        parse_job(&mut r).map_err(|e| bad(&format!("corrupt job frame: {e}")))?;
    let source = String::from_utf8(source).map_err(|_| bad("job source is not UTF-8"))?;
    let test = crate::parse(&source).map_err(|e| bad(&format!("job source: {e}")))?;
    let initial = build_system(&test, &params);
    let (reg_obs, mem_obs) = observations(&test);
    distrib::run_worker(
        sock,
        &WorkerEnv {
            shard,
            n_shards,
            initial: &initial,
            reg_obs: &reg_obs,
            mem_obs: &mem_obs,
        },
    )
}

/// FNV-1a over the job identity (source text + encoded params): the
/// checkpoint fingerprint that stops a resume from silently mixing two
/// different explorations.
fn job_digest(source: &str, params: &ModelParams) -> u64 {
    let mut w = Writer::new();
    distrib::encode_params(&mut w, params);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in source.as_bytes().iter().chain(w.into_bytes().iter()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Spawn the workers, ship the job, and coordinate the exploration.
///
/// # Errors
///
/// Infrastructure failures only — socket setup, spawn, worker
/// connection timeout, or a checkpoint that belongs to a different job.
/// Exploration-level failures (worker death, store errors) do *not*
/// error: they come back as a truncated [`DistribOutcome`].
pub fn explore_distributed(
    source: &str,
    test: &LitmusTest,
    params: &ModelParams,
    limits: &ExploreLimits,
    cfg: &DistribConfig,
) -> io::Result<DistribOutcome> {
    let n = cfg.workers.max(1);
    let digest = job_digest(source, params);

    // Resume first: refuse a mismatched checkpoint before any spawn.
    let resume: Option<Checkpoint> = match &cfg.checkpoint {
        Some(path) if path.exists() => {
            let ck = load_checkpoint(path)?;
            if ck.job_digest != digest {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "checkpoint belongs to a different test/params combination",
                ));
            }
            Some(ck)
        }
        _ => None,
    };

    let dir = create_unique_temp_dir("ppcmem-distrib")?;
    let sock_path = dir.join("coord.sock");
    let listener = UnixListener::bind(&sock_path)?;
    listener.set_nonblocking(true)?;

    let exe = std::env::current_exe()?;
    let spawn_all = || -> io::Result<Vec<Child>> {
        (0..n)
            .map(|_| {
                let mut cmd = Command::new(&exe);
                cmd.args(&cfg.worker_args)
                    .env(SOCKET_ENV, &sock_path)
                    .stdin(Stdio::null())
                    // Workers re-execute this binary; its normal stdout
                    // (test-harness chatter, report tables) would
                    // corrupt nothing — the protocol runs on the socket
                    // — but it would interleave garbage into the
                    // coordinator's own output.
                    .stdout(Stdio::null());
                for (k, v) in &cfg.worker_env {
                    cmd.env(k, v);
                }
                cmd.spawn()
            })
            .collect()
    };
    let mut children: Vec<Child> = match spawn_all() {
        Ok(c) => c,
        Err(e) => {
            let _ = std::fs::remove_dir_all(&dir);
            return Err(e);
        }
    };

    // Accept exactly n connections, watching for workers that die
    // before connecting (bad exec, immediate fault injection).
    let mut conns: Vec<UnixStream> = Vec::with_capacity(n);
    let t0 = Instant::now();
    let accept_err = loop {
        match listener.accept() {
            Ok((s, _)) => {
                conns.push(s);
                if conns.len() == n {
                    break None;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if t0.elapsed() > ACCEPT_DEADLINE {
                    break Some(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "distributed workers failed to connect",
                    ));
                }
                if children
                    .iter_mut()
                    .any(|c| c.try_wait().map(|st| st.is_some()).unwrap_or(true))
                {
                    break Some(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "a distributed worker died before connecting",
                    ));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => break Some(e),
        }
    };
    if let Some(e) = accept_err {
        for c in &mut children {
            let _ = c.kill();
            let _ = c.wait();
        }
        let _ = std::fs::remove_dir_all(&dir);
        return Err(e);
    }

    // Ship the job: shard identity + params + source.
    let mut job_err = None;
    for (shard, conn) in conns.iter_mut().enumerate() {
        conn.set_nonblocking(false)?;
        let mut w = Writer::new();
        w.usizev(shard);
        w.usizev(n);
        distrib::encode_params(&mut w, params);
        let src = source.as_bytes();
        w.usizev(src.len());
        w.bytes(src);
        if let Err(e) = write_blob(conn, &w.into_bytes()) {
            job_err = Some(e);
            break;
        }
    }
    if let Some(e) = job_err {
        for c in &mut children {
            let _ = c.kill();
            let _ = c.wait();
        }
        let _ = std::fs::remove_dir_all(&dir);
        return Err(e);
    }

    let initial = build_system(test, params);
    let ctx = CodecCtx::new(initial.program.clone(), params.clone());
    let root = Frame::root(initial);
    let outcome = distrib::coordinate(
        conns,
        children,
        root,
        &ctx,
        CoordinatorConfig {
            limits,
            checkpoint: cfg.checkpoint.as_deref(),
            job_digest: digest,
            resume,
        },
    );
    let _ = std::fs::remove_dir_all(&dir);
    Ok(outcome)
}

/// Run a litmus source on the distributed oracle and evaluate its final
/// condition. Infrastructure failures fold into a truncated
/// (inconclusive) [`RunResult`] carrying the error in
/// [`ExplorationStats::store_error`] — callers report them exactly like
/// a budget truncation, never as a verdict.
///
/// # Panics
///
/// Panics if `source` fails to parse (callers ship fixed library or
/// generated sources that already parsed once).
#[must_use]
pub fn run_source_distributed(
    source: &str,
    params: &ModelParams,
    limits: &ExploreLimits,
    cfg: &DistribConfig,
) -> RunResult {
    let test = crate::parse(source).expect("distributed source parses");
    match explore_distributed(source, &test, params, limits, cfg) {
        Ok(out) => result_from_outcomes(&test, &out.outcomes),
        Err(e) => RunResult {
            name: test.name.clone(),
            finals: 0,
            witnessed: false,
            holds: false,
            stats: ExplorationStats {
                truncated: true,
                store_error: Some(format!("distributed setup failed: {e}")),
                ..ExplorationStats::default()
            },
        },
    }
}

/// [`crate::run_entry_limited`] on the distributed oracle: run a
/// library entry across worker processes and compare against its
/// expectation.
///
/// # Panics
///
/// Panics if the entry's source fails to parse (library sources are
/// fixed).
#[must_use]
pub fn run_entry_distributed(
    entry: &LitmusEntry,
    params: &ModelParams,
    limits: &ExploreLimits,
    cfg: &DistribConfig,
) -> CheckReport {
    let result = run_source_distributed(entry.source, params, limits, cfg);
    let model_allows = result.witnessed;
    let matches = match entry.expect {
        Expectation::Allowed => model_allows,
        Expectation::Forbidden => !model_allows,
    };
    CheckReport {
        result,
        expect: entry.expect,
        matches,
    }
}

/// Raw distributed exploration of a source: the merged [`Outcomes`]
/// (for byte-identical differential comparison against the in-process
/// engines), with infrastructure failures folded to a truncated
/// outcome.
///
/// # Panics
///
/// Panics if `source` fails to parse.
#[must_use]
pub fn outcomes_distributed(
    source: &str,
    params: &ModelParams,
    limits: &ExploreLimits,
    cfg: &DistribConfig,
) -> Outcomes {
    let test = crate::parse(source).expect("distributed source parses");
    match explore_distributed(source, &test, params, limits, cfg) {
        Ok(out) => out.outcomes,
        Err(e) => Outcomes {
            finals: std::collections::BTreeSet::new(),
            stats: ExplorationStats {
                truncated: true,
                store_error: Some(format!("distributed setup failed: {e}")),
                ..ExplorationStats::default()
            },
        },
    }
}

//! Property tests for the IDL: evaluation identities, analysis
//! soundness, and interpreter/analysis agreement (randomised over a
//! deterministic [`Prng`] stream).

use crate::{analyze, eval_exp, Binop, Env, Exp, InstrState, Outcome, Reg, SemBuilder};
use ppc_bits::{Bv, Prng};
use std::sync::Arc;

const PROP_ITERS: usize = 128;

/// The structural-identity rules agree with plain evaluation on
/// fully defined values (they only *add* definedness on undef).
#[test]
fn prop_identity_rules_sound() {
    let mut rng = Prng::seed_from_u64(0x1d1_0001);
    for _ in 0..PROP_ITERS {
        let x = Bv::from_u64(rng.gen::<u64>(), 64);
        let env = Env::new(0);
        for op in [
            Binop::Xor,
            Binop::Sub,
            Binop::Andc,
            Binop::Eqv,
            Binop::Orc,
            Binop::And,
            Binop::Or,
            Binop::Eq,
            Binop::Ne,
            Binop::LtSigned,
            Binop::LtUnsigned,
        ] {
            let same = Exp::Binop(
                op,
                Box::new(Exp::Const(x.clone())),
                Box::new(Exp::Const(x.clone())),
            );
            let v = eval_exp(&same, &env).expect("evaluates");
            // Compare against the op applied to two copies via a
            // non-identical expression (forcing the generic path).
            let copy = Exp::Binop(
                op,
                Box::new(Exp::Extz(Box::new(Exp::Const(x.clone())), 64)),
                Box::new(Exp::Const(x.clone())),
            );
            let w = eval_exp(&copy, &env).expect("evaluates");
            assert_eq!(v, w, "{op:?}");
        }
    }
}

/// Static analysis over-approximates the dynamic behaviour: every
/// register slice a random add/load-shaped instruction actually
/// reads or writes is contained in the analysed footprint.
#[test]
fn prop_analysis_covers_execution() {
    let mut rng = Prng::seed_from_u64(0x1d1_0002);
    for _ in 0..PROP_ITERS {
        let ra = rng.gen_range(0..32u8);
        let rb = rng.gen_range(0..32u8);
        let rt = rng.gen_range(0..32u8);
        let base = rng.gen_range(0..0xFFFFu64);
        let mut b = SemBuilder::new();
        let x = b.local("x");
        b.read_reg(x, Reg::Gpr(ra));
        let y = b.local("y");
        b.read_reg(y, Reg::Gpr(rb));
        let ea = b.local("ea");
        b.assign(ea, b.add(b.l(x), b.l(y)));
        let m = b.local("m");
        b.read_mem(m, b.l(ea), 4);
        b.write_reg(Reg::Gpr(rt), b.extz(b.l(m), 64));
        let sem = Arc::new(b.build());
        let fp = analyze(&sem);

        let mut st = InstrState::new(sem);
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        loop {
            match st.step().expect("steps") {
                Outcome::ReadReg { slice } => {
                    reads.push(slice);
                    st.resume_reg(Bv::from_u64(base, 64)).expect("resume");
                }
                Outcome::WriteReg { slice, .. } => writes.push(slice),
                Outcome::ReadMem { .. } => {
                    st.resume_mem(Bv::from_u64(0, 32)).expect("resume");
                }
                Outcome::Done => break,
                _ => {}
            }
        }
        for s in reads {
            assert!(fp.regs_in.iter().any(|f| f.contains(&s)), "{s} ∉ regs_in");
        }
        for s in writes {
            assert!(fp.regs_out.iter().any(|f| f.contains(&s)), "{s} ∉ regs_out");
        }
        // Both register reads feed the address.
        assert!(fp.addr_regs.contains(&Reg::Gpr(ra).whole()));
        assert!(fp.addr_regs.contains(&Reg::Gpr(rb).whole()));
    }
}

/// Suspended states are true continuations: cloning at any
/// suspension point and resuming both clones with the same values
/// yields identical outcome traces.
#[test]
fn prop_clone_resume_deterministic() {
    let mut rng = Prng::seed_from_u64(0x1d1_0003);
    for _ in 0..PROP_ITERS {
        let a = rng.gen::<u64>();
        let b_ = rng.gen::<u64>();
        let mut bld = SemBuilder::new();
        let x = bld.local("x");
        bld.read_reg(x, Reg::Gpr(1));
        let y = bld.local("y");
        bld.read_reg(y, Reg::Gpr(2));
        bld.write_reg(Reg::Gpr(3), bld.add(bld.l(x), bld.l(y)));
        let sem = Arc::new(bld.build());

        let mut s1 = InstrState::new(sem);
        assert!(matches!(s1.step().expect("step"), Outcome::ReadReg { .. }));
        let mut s2 = s1.clone();
        s1.resume_reg(Bv::from_u64(a, 64)).expect("resume");
        s2.resume_reg(Bv::from_u64(a, 64)).expect("resume");
        let t1 = drain(&mut s1, b_);
        let t2 = drain(&mut s2, b_);
        assert_eq!(t1, t2);
    }
}

fn drain(st: &mut InstrState, reg_val: u64) -> Vec<String> {
    let mut trace = Vec::new();
    loop {
        match st.step().expect("step") {
            Outcome::Done => break,
            Outcome::ReadReg { slice } => {
                trace.push(format!("R {slice}"));
                st.resume_reg(Bv::from_u64(reg_val, 64).slice(64 - slice.len, slice.len))
                    .expect("resume");
            }
            Outcome::WriteReg { slice, value } => trace.push(format!("W {slice}={value}")),
            o => trace.push(format!("{o:?}")),
        }
    }
    trace
}

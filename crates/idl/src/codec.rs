//! Canonical byte encoding for the dynamic interpreter state.
//!
//! A suspended [`InstrState`] is a continuation over the instruction's
//! semantics AST: its control stack holds [`Block`]s that are (shared)
//! sub-blocks of the [`Sem`] it executes. Pointers obviously cannot
//! travel to disk, so the codec identifies every block by its *index in
//! a deterministic enumeration of the semantics' blocks*
//! ([`sem_blocks`]): the root statement list first, then every nested
//! `If`/`For` block in statement order, depth-first. The decoder
//! resolves indices back against the same enumeration of the same
//! (program-cached) `Sem`, so rebuilt frames share the original `Arc`
//! allocations — which keeps pointer-identity-based state hashing stable
//! across a spill-to-disk round trip.
//!
//! Because the enumeration is purely structural, the encoding is also
//! stable across two *independently built* systems for the same program:
//! the bytes contain block indices and values, never addresses. This is
//! what the `Arc`-pointer-based digests cannot give, and what makes
//! resumable and distributed exploration possible.

use crate::ast::{BarrierKind, Block, Local, Sem, Stmt};
use crate::eval::Env;
use crate::interp::{Frame, InstrState, Pending};
use crate::reg::{Reg, RegSlice};
use ppc_bits::{DecodeError, Reader, Writer};
use std::sync::Arc;

/// Enumerate every block of a semantics deterministically: the root
/// statement list, then each `If` then/else and `For` body in statement
/// order, depth-first. The same `Sem` always yields the same list, so
/// block indices are a rebuild-stable identity for control-stack frames.
#[must_use]
pub fn sem_blocks(sem: &Sem) -> Vec<Block> {
    let mut out: Vec<Block> = Vec::new();
    let mut stack: Vec<Block> = vec![sem.stmts.clone()];
    while let Some(b) = stack.pop() {
        out.push(b.clone());
        // Collect children in reverse so the depth-first order matches
        // statement order.
        let mut children: Vec<Block> = Vec::new();
        for s in b.iter() {
            match s {
                Stmt::If(_, t, f) => {
                    children.push(t.clone());
                    children.push(f.clone());
                }
                Stmt::For { body, .. } => children.push(body.clone()),
                _ => {}
            }
        }
        stack.extend(children.into_iter().rev());
    }
    out
}

/// The index of `block` in `blocks`, preferring pointer identity (the
/// interpreter only ever pushes clones of AST sub-blocks) with a
/// content-equality fallback. Also the control-stack identity
/// [`InstrState`](crate::InstrState)'s `Hash` uses: the index is
/// rebuild- and process-stable where the `Arc` pointer is not.
pub(crate) fn block_index(blocks: &[Block], block: &Block) -> usize {
    if let Some(i) = blocks.iter().position(|b| Arc::ptr_eq(b, block)) {
        return i;
    }
    blocks
        .iter()
        .position(|b| b == block)
        .expect("control-stack block is a sub-block of its semantics")
}

/// Encode a register as a single byte (GPRs 0–31, then the specials).
pub fn encode_reg(w: &mut Writer, r: Reg) {
    let b = match r {
        Reg::Gpr(n) => n,
        Reg::Cr => 32,
        Reg::Xer => 33,
        Reg::Lr => 34,
        Reg::Ctr => 35,
        Reg::Cia => 36,
        Reg::Nia => 37,
    };
    w.byte(b);
}

/// Decode a register byte.
///
/// # Errors
///
/// Rejects bytes outside the register universe.
pub fn decode_reg(r: &mut Reader<'_>) -> Result<Reg, DecodeError> {
    match r.byte()? {
        n @ 0..=31 => Ok(Reg::Gpr(n)),
        32 => Ok(Reg::Cr),
        33 => Ok(Reg::Xer),
        34 => Ok(Reg::Lr),
        35 => Ok(Reg::Ctr),
        36 => Ok(Reg::Cia),
        37 => Ok(Reg::Nia),
        tag => Err(DecodeError::BadTag { what: "Reg", tag }),
    }
}

/// Encode a register slice.
pub fn encode_reg_slice(w: &mut Writer, s: RegSlice) {
    encode_reg(w, s.reg);
    w.usizev(s.start);
    w.usizev(s.len);
}

/// Decode a register slice.
///
/// # Errors
///
/// Rejects slices that do not fit their register.
pub fn decode_reg_slice(r: &mut Reader<'_>) -> Result<RegSlice, DecodeError> {
    let reg = decode_reg(r)?;
    let start = r.usizev()?;
    let len = r.usizev()?;
    // Checked: corrupt varints must reject, not overflow (debug builds
    // trap the addition).
    if start.checked_add(len).is_none_or(|end| end > reg.width()) {
        return Err(DecodeError::Invalid("RegSlice out of register range"));
    }
    Ok(RegSlice::new(reg, start, len))
}

/// Encode a barrier kind as one byte.
pub fn encode_barrier_kind(w: &mut Writer, k: BarrierKind) {
    w.byte(match k {
        BarrierKind::Sync => 0,
        BarrierKind::Lwsync => 1,
        BarrierKind::Eieio => 2,
        BarrierKind::Isync => 3,
    });
}

/// Decode a barrier kind.
///
/// # Errors
///
/// Rejects unknown tags.
pub fn decode_barrier_kind(r: &mut Reader<'_>) -> Result<BarrierKind, DecodeError> {
    match r.byte()? {
        0 => Ok(BarrierKind::Sync),
        1 => Ok(BarrierKind::Lwsync),
        2 => Ok(BarrierKind::Eieio),
        3 => Ok(BarrierKind::Isync),
        tag => Err(DecodeError::BadTag {
            what: "BarrierKind",
            tag,
        }),
    }
}

fn encode_env(w: &mut Writer, env: &Env) {
    let n = env.slot_count();
    w.usizev(n);
    for i in 0..n {
        w.option(env.get(Local(i as u32)), Writer::bv);
    }
}

fn decode_env(r: &mut Reader<'_>) -> Result<Env, DecodeError> {
    let n = r.usizev()?;
    // Every slot takes at least one byte (its option flag), so a slot
    // count beyond the remaining input is certain truncation — reject it
    // *before* sizing the slot vector, lest a corrupt varint become a
    // pathological allocation (which panics rather than `Err`s).
    if n > r.remaining() {
        return Err(DecodeError::Truncated);
    }
    let mut env = Env::new(n);
    for i in 0..n {
        if let Some(v) = r.option(Reader::bv)? {
            env.set(Local(i as u32), v);
        }
    }
    Ok(env)
}

fn encode_pending(w: &mut Writer, p: &Pending) {
    match p {
        Pending::Reg(l, s) => {
            w.byte(0);
            w.u64v(u64::from(l.0));
            encode_reg_slice(w, *s);
        }
        Pending::Mem(l, addr, size) => {
            w.byte(1);
            w.u64v(u64::from(l.0));
            w.u64v(*addr);
            w.usizev(*size);
        }
        Pending::WriteCond(l) => {
            w.byte(2);
            w.u64v(u64::from(l.0));
        }
    }
}

fn decode_local(r: &mut Reader<'_>) -> Result<Local, DecodeError> {
    let v = r.u64v()?;
    u32::try_from(v)
        .map(Local)
        .map_err(|_| DecodeError::Invalid("Local out of u32 range"))
}

fn decode_pending(r: &mut Reader<'_>) -> Result<Pending, DecodeError> {
    match r.byte()? {
        0 => {
            let l = decode_local(r)?;
            let s = decode_reg_slice(r)?;
            Ok(Pending::Reg(l, s))
        }
        1 => {
            let l = decode_local(r)?;
            let addr = r.u64v()?;
            let size = r.usizev()?;
            Ok(Pending::Mem(l, addr, size))
        }
        2 => Ok(Pending::WriteCond(decode_local(r)?)),
        tag => Err(DecodeError::BadTag {
            what: "Pending",
            tag,
        }),
    }
}

/// Encode a suspended interpreter state against its semantics' block
/// enumeration (`blocks` must be [`sem_blocks`] of the state's `Sem`).
pub fn encode_instr_state(w: &mut Writer, st: &InstrState, blocks: &[Block]) {
    encode_env(w, &st.env);
    w.usizev(st.stack.len());
    for f in &st.stack {
        match f {
            Frame::Block { stmts, idx } => {
                w.byte(0);
                w.usizev(block_index(blocks, stmts));
                w.usizev(*idx);
            }
            Frame::Loop {
                var,
                next,
                last,
                downto,
                body,
            } => {
                w.byte(1);
                w.u64v(u64::from(var.0));
                w.i64v(*next);
                w.i64v(*last);
                w.bool(*downto);
                w.usizev(block_index(blocks, body));
            }
        }
    }
    w.option(st.pending.as_ref(), encode_pending);
    w.u64v(u64::from(st.fuel));
}

/// Decode a suspended interpreter state for `sem`, resolving block
/// indices against `blocks` (= [`sem_blocks`]`(sem)`), so the rebuilt
/// frames share the semantics' own `Arc` allocations.
///
/// # Errors
///
/// Any truncation, bad tag, or out-of-range block index.
pub fn decode_instr_state(
    r: &mut Reader<'_>,
    sem: &Arc<Sem>,
    blocks: &[Block],
) -> Result<InstrState, DecodeError> {
    let env = decode_env(r)?;
    // No capacity hint: a corrupt frame-count varint must surface as a
    // decode error from the per-frame reads, not as a pathological
    // up-front allocation (capacity overflow panics, it doesn't `Err`).
    let frames = r.usizev()?;
    let mut stack = Vec::new();
    let get_block = |i: usize| -> Result<Block, DecodeError> {
        blocks
            .get(i)
            .cloned()
            .ok_or(DecodeError::Invalid("block index out of range"))
    };
    for _ in 0..frames {
        let f = match r.byte()? {
            0 => {
                let b = r.usizev()?;
                let idx = r.usizev()?;
                Frame::Block {
                    stmts: get_block(b)?,
                    idx,
                }
            }
            1 => {
                let var = decode_local(r)?;
                let next = r.i64v()?;
                let last = r.i64v()?;
                let downto = r.bool()?;
                let body = get_block(r.usizev()?)?;
                Frame::Loop {
                    var,
                    next,
                    last,
                    downto,
                    body,
                }
            }
            tag => return Err(DecodeError::BadTag { what: "Frame", tag }),
        };
        stack.push(f);
    }
    let pending = r.option(decode_pending)?;
    let fuel = u32::try_from(r.u64v()?).map_err(|_| DecodeError::Invalid("fuel out of range"))?;
    Ok(InstrState {
        sem: sem.clone(),
        env,
        stack,
        pending,
        fuel,
    })
}

// ---- footprint ---------------------------------------------------------

use crate::analysis::{AccessSet, Footprint, NiaTarget};
use std::collections::BTreeSet;

fn encode_access_set(w: &mut Writer, a: &AccessSet) {
    match a {
        AccessSet::None => w.byte(0),
        AccessSet::Concrete(set) => {
            w.byte(1);
            w.usizev(set.len());
            for &(addr, size) in set {
                w.u64v(addr);
                w.usizev(size);
            }
        }
        AccessSet::Unknown => w.byte(2),
    }
}

fn decode_access_set(r: &mut Reader<'_>) -> Result<AccessSet, DecodeError> {
    match r.byte()? {
        0 => Ok(AccessSet::None),
        1 => {
            let n = r.usizev()?;
            let mut set = BTreeSet::new();
            for _ in 0..n {
                let addr = r.u64v()?;
                let size = r.usizev()?;
                set.insert((addr, size));
            }
            Ok(AccessSet::Concrete(set))
        }
        2 => Ok(AccessSet::Unknown),
        tag => Err(DecodeError::BadTag {
            what: "AccessSet",
            tag,
        }),
    }
}

/// Encode an analysed footprint (the codec serialises the *dynamic*
/// footprint of a partially executed instance; the static one is
/// recomputed from the shared program cache on decode).
pub fn encode_footprint(w: &mut Writer, fp: &Footprint) {
    w.usizev(fp.regs_in.len());
    for &s in &fp.regs_in {
        encode_reg_slice(w, s);
    }
    w.usizev(fp.regs_out.len());
    for &s in &fp.regs_out {
        encode_reg_slice(w, s);
    }
    encode_access_set(w, &fp.mem_reads);
    encode_access_set(w, &fp.mem_writes);
    w.usizev(fp.nias.len());
    for n in &fp.nias {
        match n {
            NiaTarget::Succ => w.byte(0),
            NiaTarget::Concrete(t) => {
                w.byte(1);
                w.u64v(*t);
            }
            NiaTarget::Indirect => w.byte(2),
        }
    }
    w.usizev(fp.addr_regs.len());
    for &s in &fp.addr_regs {
        encode_reg_slice(w, s);
    }
    w.usizev(fp.barriers.len());
    for &k in &fp.barriers {
        encode_barrier_kind(w, k);
    }
    w.bool(fp.incomplete);
}

/// Decode a footprint.
///
/// # Errors
///
/// Any truncation or bad tag.
pub fn decode_footprint(r: &mut Reader<'_>) -> Result<Footprint, DecodeError> {
    let mut regs_in = BTreeSet::new();
    for _ in 0..r.usizev()? {
        regs_in.insert(decode_reg_slice(r)?);
    }
    let mut regs_out = BTreeSet::new();
    for _ in 0..r.usizev()? {
        regs_out.insert(decode_reg_slice(r)?);
    }
    let mem_reads = decode_access_set(r)?;
    let mem_writes = decode_access_set(r)?;
    let mut nias = BTreeSet::new();
    for _ in 0..r.usizev()? {
        nias.insert(match r.byte()? {
            0 => NiaTarget::Succ,
            1 => NiaTarget::Concrete(r.u64v()?),
            2 => NiaTarget::Indirect,
            tag => {
                return Err(DecodeError::BadTag {
                    what: "NiaTarget",
                    tag,
                })
            }
        });
    }
    let mut addr_regs = BTreeSet::new();
    for _ in 0..r.usizev()? {
        addr_regs.insert(decode_reg_slice(r)?);
    }
    let mut barriers = BTreeSet::new();
    for _ in 0..r.usizev()? {
        barriers.insert(decode_barrier_kind(r)?);
    }
    let incomplete = r.bool()?;
    Ok(Footprint {
        regs_in,
        regs_out,
        mem_reads,
        mem_writes,
        nias,
        addr_regs,
        barriers,
        incomplete,
    })
}

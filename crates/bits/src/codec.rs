//! Byte-stream codec primitives for canonical state encoding.
//!
//! The exhaustive oracle's disk-spilling store serialises whole system
//! states to temp files and reads them back; the encoding must be
//! *canonical* (the same state always encodes to the same bytes, across
//! independently built systems) and *exact* (`decode(encode(s)) == s`).
//! This module provides the shared low-level pieces: an append-only
//! [`Writer`] over `Vec<u8>`, a checked [`Reader`], LEB128 varints for
//! integers, and the packed lifted-bitvector encoding for [`Bv`].
//!
//! Everything here is deterministic byte-for-byte: no pointers, no hash
//! iteration order, no platform-dependent widths (`usize` values travel
//! as `u64` varints).

use crate::{Bit, Bv};

/// An encoding error surfaced while *decoding* (encoding is total).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value being read was complete.
    Truncated,
    /// A varint ran past the 64-bit range.
    VarintOverflow,
    /// A tag byte had no corresponding variant.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A decoded value violated an invariant of the target type.
    Invalid(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "input truncated"),
            DecodeError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            DecodeError::BadTag { what, tag } => write!(f, "bad tag {tag:#04x} for {what}"),
            DecodeError::Invalid(what) => write!(f, "invalid encoded value: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// An append-only byte sink for canonical encoding.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty writer.
    #[must_use]
    pub fn new() -> Self {
        Writer::default()
    }

    /// Consume the writer, yielding the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one raw byte.
    pub fn byte(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, bs: &[u8]) {
        self.buf.extend_from_slice(bs);
    }

    /// Append a `u64` as a LEB128 varint.
    pub fn u64v(&mut self, mut v: u64) {
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(b);
                return;
            }
            self.buf.push(b | 0x80);
        }
    }

    /// Append a `usize` (as a `u64` varint — the encoding is
    /// width-independent).
    pub fn usizev(&mut self, v: usize) {
        self.u64v(v as u64);
    }

    /// Append an `i64` as a zigzag-coded varint.
    pub fn i64v(&mut self, v: i64) {
        self.u64v(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Append a boolean as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Append an optional value: a presence byte, then the value.
    pub fn option<T>(&mut self, v: Option<&T>, mut f: impl FnMut(&mut Self, &T)) {
        match v {
            None => self.byte(0),
            Some(x) => {
                self.byte(1);
                f(self, x);
            }
        }
    }

    /// Append a [`Bv`]: bit length as a varint, then the lifted bits
    /// packed four per byte (2 bits each: `00` zero, `01` one, `10`
    /// undef), MSB0 order, zero-padded in the final byte.
    pub fn bv(&mut self, v: &Bv) {
        self.usizev(v.len());
        let mut acc: u8 = 0;
        let mut n = 0;
        for b in v.iter() {
            let code = match b {
                Bit::Zero => 0u8,
                Bit::One => 1,
                Bit::Undef => 2,
            };
            acc |= code << (2 * n);
            n += 1;
            if n == 4 {
                self.buf.push(acc);
                acc = 0;
                n = 0;
            }
        }
        if n > 0 {
            self.buf.push(acc);
        }
    }
}

/// A checked cursor over encoded bytes.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Whether every byte has been consumed.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Bytes remaining.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Read one raw byte.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] at end of input.
    pub fn byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Read `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] if fewer than `n` bytes remain.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a LEB128 varint as `u64`.
    ///
    /// # Errors
    ///
    /// Truncation or a varint exceeding 64 bits.
    pub fn u64v(&mut self) -> Result<u64, DecodeError> {
        let mut v: u64 = 0;
        let mut shift = 0;
        loop {
            let b = self.byte()?;
            if shift >= 64 || (shift == 63 && b > 1) {
                return Err(DecodeError::VarintOverflow);
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Read a `usize` varint.
    ///
    /// # Errors
    ///
    /// As [`Reader::u64v`], plus overflow of the platform `usize`.
    pub fn usizev(&mut self) -> Result<usize, DecodeError> {
        usize::try_from(self.u64v()?).map_err(|_| DecodeError::VarintOverflow)
    }

    /// Read a zigzag-coded `i64` varint.
    ///
    /// # Errors
    ///
    /// As [`Reader::u64v`].
    pub fn i64v(&mut self) -> Result<i64, DecodeError> {
        let z = self.u64v()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Read a boolean byte.
    ///
    /// # Errors
    ///
    /// Truncation, or a byte other than 0/1.
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::BadTag { what: "bool", tag }),
        }
    }

    /// Read an optional value written by [`Writer::option`].
    ///
    /// # Errors
    ///
    /// Truncation, a bad presence byte, or a failure in `f`.
    pub fn option<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, DecodeError>,
    ) -> Result<Option<T>, DecodeError> {
        match self.byte()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            tag => Err(DecodeError::BadTag {
                what: "option",
                tag,
            }),
        }
    }

    /// Read a [`Bv`] written by [`Writer::bv`].
    ///
    /// # Errors
    ///
    /// Truncation, or an invalid 2-bit code (`11`).
    pub fn bv(&mut self) -> Result<Bv, DecodeError> {
        let len = self.usizev()?;
        let nbytes = len.div_ceil(4);
        let packed = self.bytes(nbytes)?;
        let mut bits = Vec::with_capacity(len);
        for i in 0..len {
            let code = (packed[i / 4] >> (2 * (i % 4))) & 0b11;
            bits.push(match code {
                0 => Bit::Zero,
                1 => Bit::One,
                2 => Bit::Undef,
                _ => {
                    return Err(DecodeError::BadTag {
                        what: "lifted bit",
                        tag: code,
                    })
                }
            });
        }
        // Padding bits in the last byte must be zero for canonicality.
        if len % 4 != 0 {
            let pad = packed[nbytes - 1] >> (2 * (len % 4));
            if pad != 0 {
                return Err(DecodeError::Invalid("non-zero Bv padding"));
            }
        }
        Ok(Bv::from_bits(bits))
    }
}

#[cfg(test)]
mod codec_tests {
    use super::*;
    use crate::Prng;

    #[test]
    fn varint_round_trips() {
        let cases = [
            0u64,
            1,
            127,
            128,
            300,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut w = Writer::new();
        for &c in &cases {
            w.u64v(c);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for &c in &cases {
            assert_eq!(r.u64v().unwrap(), c);
        }
        assert!(r.is_exhausted());
    }

    #[test]
    fn i64_zigzag_round_trips() {
        let cases = [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN];
        let mut w = Writer::new();
        for &c in &cases {
            w.i64v(c);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for &c in &cases {
            assert_eq!(r.i64v().unwrap(), c);
        }
    }

    #[test]
    fn bv_round_trips_with_undef() {
        let mut rng = Prng::seed_from_u64(0xb17_c0dec);
        for len in [0usize, 1, 3, 4, 7, 8, 31, 64, 65, 200] {
            let bits: Vec<Bit> = (0..len)
                .map(|_| match rng.gen_range(0..3u32) {
                    0 => Bit::Zero,
                    1 => Bit::One,
                    _ => Bit::Undef,
                })
                .collect();
            let v = Bv::from_bits(bits);
            let mut w = Writer::new();
            w.bv(&v);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.bv().unwrap(), v);
            assert!(r.is_exhausted());
        }
    }

    #[test]
    fn truncated_inputs_error() {
        let mut w = Writer::new();
        w.u64v(300);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..1]);
        assert_eq!(r.u64v(), Err(DecodeError::Truncated));
        let mut r = Reader::new(&[]);
        assert_eq!(r.byte(), Err(DecodeError::Truncated));
        assert!(Reader::new(&[2]).bool().is_err());
    }

    #[test]
    fn nonzero_bv_padding_rejected() {
        let mut w = Writer::new();
        w.bv(&Bv::from_u64(0b101, 3));
        let mut bytes = w.into_bytes();
        // Corrupt the padding (top 2 bits of the single packed byte).
        *bytes.last_mut().unwrap() |= 0b1100_0000;
        let mut r = Reader::new(&bytes);
        assert!(r.bv().is_err());
    }
}

//! Litmus conformance: the paper's §2 suite, one test per entry, plus a
//! budgeted sweep over the full built-in library through the batch
//! harness (the complete, unbudgeted library and generated families run
//! in the `conformance` binary and the `#[ignore]`d sweeps below).

use ppcmem::litmus::harness::{run_suite, HarnessConfig};
use ppcmem::litmus::{generated_suite, library, paper_section2_suite, run_entry, LitmusEntry};
use ppcmem::model::ModelParams;

fn check_entry(name: &str) {
    let entry = paper_section2_suite()
        .into_iter()
        .chain(library())
        .find(|e| e.name == name)
        .unwrap_or_else(|| panic!("{name} in library"));
    let report = run_entry(&entry, &ModelParams::default());
    assert!(
        report.matches,
        "{name}: model witnessed={}, paper says {} (pinned by {})",
        report.result.witnessed, report.expect, entry.pinned_by
    );
}

// ---- §2: one test per printed example, with the paper's verdict -------

/// §2.1.1 — speculative execution: control dependency alone does not
/// order the reads (Allowed).
#[test]
fn paper_s2_mp_sync_ctrl() {
    check_entry("MP+sync+ctrl");
}

/// §2.1.2 — no per-thread shadow register state: register reuse does
/// not order the reads (Allowed).
#[test]
fn paper_s2_mp_sync_rs() {
    check_entry("MP+sync+rs");
}

/// §2.1.4 — register granularity: writing CR3 and reading CR4 carries
/// no dependency (Allowed).
#[test]
fn paper_s2_mp_sync_addr_cr() {
    check_entry("MP+sync+addr-cr");
}

/// §2.1.5 — forwarding from uncommitted speculative writes (Allowed).
#[test]
fn paper_s2_ppoca() {
    check_entry("PPOCA");
}

/// §2.1.6 — store footprints determined after address reads only: data
/// dependencies into the middle writes leave the last writes free
/// (Allowed).
#[test]
fn paper_s2_lb_datas_ww() {
    check_entry("LB+datas+WW");
}

/// §2.1.6 — undetermined middle-write *addresses* block the last writes
/// (Forbidden).
#[test]
fn paper_s2_lb_addrs_ww() {
    check_entry("LB+addrs+WW");
}

// ---- the full built-in library, budgeted -------------------------------

/// Library tests known to exceed the sweep's per-test state budget;
/// they are covered unbudgeted by the `#[ignore]`d sweep below and by
/// the `conformance` binary.
const BIG_TESTS: &[&str] = &[
    "PPOCA",
    "LB+datas+WW",
    "LB+addrs+WW",
    "SB+lwsyncs",
    "PPOAA",
    "WRC+lwsync+addr",
    "2+2W+syncs",
];

/// Every library test either matches its expectation conclusively or is
/// one of the known-big tests whose budget ran out — never a mismatch,
/// and never an unexpected truncation.
#[test]
fn library_budgeted_sweep_has_no_mismatch() {
    let mut cfg = HarnessConfig::default();
    cfg.params.max_states = 40_000;
    let report = run_suite(&library(), &cfg);
    let mismatches: Vec<String> = report
        .mismatches()
        .iter()
        .map(|r| {
            format!(
                "{} (model {}, expected {})",
                r.name,
                r.verdict(),
                r.expected
            )
        })
        .collect();
    assert!(mismatches.is_empty(), "verdict mismatches: {mismatches:?}");
    for r in report.inconclusive() {
        assert!(
            BIG_TESTS.contains(&r.name.as_str()),
            "{} unexpectedly exceeded the state budget ({} states)",
            r.name,
            r.states
        );
    }
    // The budget must actually decide the bulk of the library.
    assert!(
        report.reports.len() - report.inconclusive().len() >= 23,
        "budget too small: only {} conclusive of {}",
        report.reports.len() - report.inconclusive().len(),
        report.reports.len()
    );
}

/// A sample of the generated systematic families (the full set runs in
/// the `conformance` binary and the `#[ignore]`d sweep).
#[test]
fn generated_families_sample_matches() {
    let suite = generated_suite();
    let pick = |name: &str| -> LitmusEntry {
        *suite
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("{name} in generated suite"))
    };
    let cfg = HarnessConfig::default();
    for name in [
        "MP+po+po",
        "MP+sync+addr",
        "MP+lwsync+ctrlisync",
        "SB+sync+sync",
        "SB+lwsync+po",
        "LB+addr+data",
        "WRC+sync+addr",
    ] {
        let r = ppcmem::litmus::harness::run_one(&pick(name), &cfg);
        assert!(r.conclusive(), "{name} truncated");
        assert!(
            r.matches,
            "{name}: model {}, expected {}",
            r.verdict(),
            r.expected
        );
    }
}

/// The full library, unbudgeted (slow: minutes). `cargo test -- --ignored`
/// or the `conformance` binary.
#[test]
#[ignore = "minutes of exhaustive exploration; run via `cargo test -- --ignored` or the conformance binary"]
fn library_full_sweep_unbudgeted() {
    let report = run_suite(&library(), &HarnessConfig::default());
    assert!(
        report.all_conclusive_matches(),
        "mismatches: {:?}, inconclusive: {:?}",
        report
            .mismatches()
            .iter()
            .map(|r| r.name.clone())
            .collect::<Vec<_>>(),
        report
            .inconclusive()
            .iter()
            .map(|r| r.name.clone())
            .collect::<Vec<_>>()
    );
}

/// The generated systematic families, unbudgeted (slow: tens of
/// minutes).
#[test]
#[ignore = "tens of minutes of exhaustive exploration; run via the conformance binary"]
fn generated_full_sweep_unbudgeted() {
    let report = run_suite(&generated_suite(), &HarnessConfig::default());
    assert!(
        report.all_conclusive_matches(),
        "mismatches: {:?}, inconclusive: {:?}",
        report
            .mismatches()
            .iter()
            .map(|r| r.name.clone())
            .collect::<Vec<_>>(),
        report
            .inconclusive()
            .iter()
            .map(|r| r.name.clone())
            .collect::<Vec<_>>()
    );
}

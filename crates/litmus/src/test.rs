//! The litmus-test data model.

use crate::cond::Cond;
use ppc_isa::Instruction;
use std::collections::BTreeMap;

/// One thread's code and initial registers.
#[derive(Clone, Debug)]
pub struct ThreadCode {
    /// The instructions, in program order.
    pub instrs: Vec<Instruction>,
    /// Initial register values: GPR number → value (symbolic locations
    /// already resolved to addresses).
    pub init_regs: BTreeMap<u8, u64>,
}

/// The architectural expectation for a test's `exists` condition, from
/// the paper and the published POWER results it validates against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// The condition is architecturally allowed (and typically observed
    /// on some POWER implementation).
    Allowed,
    /// The condition is architecturally forbidden.
    Forbidden,
}

impl std::fmt::Display for Expectation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expectation::Allowed => write!(f, "Allowed"),
            Expectation::Forbidden => write!(f, "Forbidden"),
        }
    }
}

/// A parsed litmus test.
#[derive(Clone, Debug)]
pub struct LitmusTest {
    /// Test name (from the header line).
    pub name: String,
    /// Per-thread code.
    pub threads: Vec<ThreadCode>,
    /// Named memory locations and their assigned addresses.
    pub locations: BTreeMap<String, u64>,
    /// Initial memory values (word-sized), by location name.
    pub init_mem: BTreeMap<String, u64>,
    /// The final condition.
    pub cond: Cond,
}

impl LitmusTest {
    /// The address of a named location.
    ///
    /// # Panics
    ///
    /// Panics if the location does not exist.
    #[must_use]
    pub fn addr_of(&self, name: &str) -> u64 {
        self.locations[name]
    }
}

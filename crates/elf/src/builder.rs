//! Building synthetic ELF64 big-endian PPC64 executables.

use crate::EM_PPC64;
use ppc_isa::Instruction;

struct Seg {
    vaddr: u64,
    bytes: Vec<u8>,
    executable: bool,
}

struct Sym {
    name: String,
    addr: u64,
    size: u64,
}

/// Builds a statically linked `ET_EXEC` ELF64 image (big-endian,
/// `EM_PPC64`) with program headers, a symbol table, and a string table.
#[derive(Default)]
pub struct ElfBuilder {
    entry: u64,
    segments: Vec<Seg>,
    symbols: Vec<Sym>,
}

impl ElfBuilder {
    /// A new builder with the given entry point.
    #[must_use]
    pub fn new(entry: u64) -> Self {
        ElfBuilder {
            entry,
            segments: Vec::new(),
            symbols: Vec::new(),
        }
    }

    /// Add an executable segment assembled from instructions.
    #[must_use]
    pub fn text(mut self, vaddr: u64, code: &[Instruction]) -> Self {
        let mut bytes = Vec::with_capacity(code.len() * 4);
        for i in code {
            bytes.extend_from_slice(&ppc_isa::encode(i).to_be_bytes());
        }
        self.segments.push(Seg {
            vaddr,
            bytes,
            executable: true,
        });
        self
    }

    /// Add a data segment with raw bytes.
    #[must_use]
    pub fn data(mut self, vaddr: u64, bytes: &[u8]) -> Self {
        self.segments.push(Seg {
            vaddr,
            bytes: bytes.to_vec(),
            executable: false,
        });
        self
    }

    /// Add a global data symbol.
    #[must_use]
    pub fn symbol(mut self, name: &str, addr: u64, size: u64) -> Self {
        self.symbols.push(Sym {
            name: name.to_owned(),
            addr,
            size,
        });
        self
    }

    /// Serialise the image.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn build(self) -> Vec<u8> {
        const EHSIZE: usize = 64;
        const PHENT: usize = 56;
        const SHENT: usize = 64;
        const SYMENT: usize = 24;

        let phnum = self.segments.len();
        let mut out = Vec::new();

        // ---- e_ident + header (fixed up later for offsets) ----------
        out.extend_from_slice(&[0x7f, b'E', b'L', b'F']);
        out.push(2); // ELFCLASS64
        out.push(2); // ELFDATA2MSB (big-endian)
        out.push(1); // EV_CURRENT
        out.extend_from_slice(&[0; 9]);
        push16(&mut out, 2); // ET_EXEC
        push16(&mut out, EM_PPC64);
        push32(&mut out, 1); // EV_CURRENT
        push64(&mut out, self.entry);
        push64(&mut out, EHSIZE as u64); // e_phoff
        let e_shoff_pos = out.len();
        push64(&mut out, 0); // e_shoff — patched below
        push32(&mut out, 0); // e_flags
        push16(&mut out, EHSIZE as u16);
        push16(&mut out, PHENT as u16);
        push16(&mut out, phnum as u16);
        push16(&mut out, SHENT as u16);
        push16(&mut out, 4); // e_shnum: null, .symtab, .strtab, .shstrtab
        push16(&mut out, 3); // e_shstrndx

        // ---- program headers ----------------------------------------
        let mut data_off = EHSIZE + PHENT * phnum;
        let mut seg_offsets = Vec::new();
        for seg in &self.segments {
            seg_offsets.push(data_off);
            push32(&mut out, 1); // PT_LOAD
            push32(&mut out, if seg.executable { 0b101 } else { 0b110 }); // R+X / R+W
            push64(&mut out, data_off as u64);
            push64(&mut out, seg.vaddr);
            push64(&mut out, seg.vaddr); // paddr
            push64(&mut out, seg.bytes.len() as u64);
            push64(&mut out, seg.bytes.len() as u64);
            push64(&mut out, 4); // align
            data_off += seg.bytes.len();
        }

        // ---- segment data --------------------------------------------
        for seg in &self.segments {
            out.extend_from_slice(&seg.bytes);
        }

        // ---- string tables & symtab ----------------------------------
        let mut strtab = vec![0u8]; // index 0 = empty
        let mut sym_entries = Vec::new();
        for s in &self.symbols {
            let name_off = strtab.len() as u32;
            strtab.extend_from_slice(s.name.as_bytes());
            strtab.push(0);
            sym_entries.push((name_off, s.addr, s.size));
        }
        let symtab_off = out.len();
        // Null symbol first.
        out.extend_from_slice(&[0u8; SYMENT]);
        for (name_off, addr, size) in &sym_entries {
            push32(&mut out, *name_off);
            out.push(0x11); // STB_GLOBAL | STT_OBJECT
            out.push(0); // st_other
            push16(&mut out, 1); // st_shndx (arbitrary non-zero)
            push64(&mut out, *addr);
            push64(&mut out, *size);
        }
        let strtab_off = out.len();
        out.extend_from_slice(&strtab);
        let shstr = b"\0.symtab\0.strtab\0.shstrtab\0";
        let shstr_off = out.len();
        out.extend_from_slice(shstr);

        // ---- section headers ------------------------------------------
        let shoff = out.len();
        // null section
        out.extend_from_slice(&[0u8; SHENT]);
        // .symtab
        push_section(
            &mut out,
            1,
            2, // SHT_SYMTAB
            symtab_off as u64,
            ((sym_entries.len() + 1) * SYMENT) as u64,
            2, // link: .strtab index
            SYMENT as u64,
        );
        // .strtab
        push_section(&mut out, 9, 3, strtab_off as u64, strtab.len() as u64, 0, 0);
        // .shstrtab
        push_section(&mut out, 17, 3, shstr_off as u64, shstr.len() as u64, 0, 0);

        // Patch e_shoff.
        out[e_shoff_pos..e_shoff_pos + 8].copy_from_slice(&(shoff as u64).to_be_bytes());
        out
    }
}

fn push16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn push32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn push64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn push_section(
    out: &mut Vec<u8>,
    name: u32,
    shtype: u32,
    offset: u64,
    size: u64,
    link: u32,
    entsize: u64,
) {
    push32(out, name);
    push32(out, shtype);
    push64(out, 0); // flags
    push64(out, 0); // addr
    push64(out, offset);
    push64(out, size);
    push32(out, link);
    push32(out, 0); // info
    push64(out, 1); // addralign
    push64(out, entsize);
}

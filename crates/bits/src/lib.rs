//! Lifted bitvectors for the POWER architectural model.
//!
//! The paper (§2.1.7) works over *lifted* bits — `0`, `1`, or `undef` — so
//! that instruction descriptions which leave register bits explicitly
//! undefined can still be executed and compared against hardware "up to
//! undef". This crate provides:
//!
//! - [`Bit`]: a single lifted bit;
//! - [`Bv`]: a bitvector of lifted bits, stored MSB-first to match POWER's
//!   MSB0 numbering convention (bit 0 is the most significant);
//! - [`Tribool`]: three-valued booleans produced by comparisons over
//!   possibly-undefined values;
//! - arithmetic, logical, shift/rotate, and counting operations with
//!   conservative undef propagation (any undefined input bit that can affect
//!   an output bit makes that output bit undefined).
//!
//! The same `undef` value doubles as the distinguished *unknown* used by the
//! exhaustive footprint analysis of partially executed instructions
//! (paper §2.2): "the interpreter operations treat unknown similarly to
//! undef".
//!
//! # Example
//!
//! ```
//! use ppc_bits::Bv;
//!
//! let a = Bv::from_u64(5, 64);
//! let b = Bv::from_u64(7, 64);
//! assert_eq!(a.add(&b).to_u64().unwrap(), 12);
//!
//! // POWER MSB0 numbering: bit 0 is the most significant.
//! let w = Bv::from_u64(1, 32);
//! assert_eq!(w.bit(31), ppc_bits::Bit::One);
//! ```

mod arith;
mod bit;
mod bv;
pub mod codec;
mod fmt;
pub mod rng;

pub use bit::{Bit, Tribool};
pub use bv::Bv;
pub use codec::{DecodeError, Reader, Writer};
pub use rng::Prng;

#[cfg(test)]
mod tests;

//! Final-condition expressions (`exists (1:r5=1 /\ 1:r4=0)`).

use ppc_model::FinalState;
use std::collections::BTreeMap;

/// The quantifier of a final condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Quantifier {
    /// `exists` — satisfied if *some* final state matches.
    Exists,
    /// `~exists` — the negation (used to state forbidden outcomes).
    NotExists,
    /// `forall` — every final state must match.
    Forall,
}

/// An atomic condition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CondAtom {
    /// `T:rN = v` — thread `T`'s final GPR `N` equals `v`.
    Reg {
        /// Thread index.
        tid: usize,
        /// GPR number.
        gpr: u8,
        /// Expected value.
        value: u64,
    },
    /// `x = v` — final memory word at location `x` equals `v`.
    Mem {
        /// Location name.
        loc: String,
        /// Expected value.
        value: u64,
    },
    /// Constant truth (the empty condition).
    True,
}

/// A boolean combination of atoms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CondExpr {
    /// An atom.
    Atom(CondAtom),
    /// Conjunction.
    And(Box<CondExpr>, Box<CondExpr>),
    /// Disjunction.
    Or(Box<CondExpr>, Box<CondExpr>),
    /// Negation.
    Not(Box<CondExpr>),
}

/// A quantified final condition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cond {
    /// The quantifier.
    pub quantifier: Quantifier,
    /// The body.
    pub expr: CondExpr,
}

impl CondExpr {
    /// Evaluate against one final state. `locations` maps names to
    /// addresses (memory atoms are matched by the queried address).
    #[must_use]
    pub fn eval(&self, fs: &FinalState, locations: &BTreeMap<String, u64>) -> bool {
        match self {
            CondExpr::Atom(a) => a.eval(fs, locations),
            CondExpr::And(l, r) => l.eval(fs, locations) && r.eval(fs, locations),
            CondExpr::Or(l, r) => l.eval(fs, locations) || r.eval(fs, locations),
            CondExpr::Not(e) => !e.eval(fs, locations),
        }
    }

    /// All register atoms mentioned (for choosing oracle observables).
    pub fn reg_atoms(&self, out: &mut Vec<(usize, u8)>) {
        match self {
            CondExpr::Atom(CondAtom::Reg { tid, gpr, .. }) => out.push((*tid, *gpr)),
            CondExpr::Atom(_) => {}
            CondExpr::And(l, r) | CondExpr::Or(l, r) => {
                l.reg_atoms(out);
                r.reg_atoms(out);
            }
            CondExpr::Not(e) => e.reg_atoms(out),
        }
    }

    /// All memory atoms mentioned.
    pub fn mem_atoms(&self, out: &mut Vec<String>) {
        match self {
            CondExpr::Atom(CondAtom::Mem { loc, .. }) => out.push(loc.clone()),
            CondExpr::Atom(_) => {}
            CondExpr::And(l, r) | CondExpr::Or(l, r) => {
                l.mem_atoms(out);
                r.mem_atoms(out);
            }
            CondExpr::Not(e) => e.mem_atoms(out),
        }
    }
}

impl CondAtom {
    fn eval(&self, fs: &FinalState, locations: &BTreeMap<String, u64>) -> bool {
        match self {
            CondAtom::True => true,
            CondAtom::Reg { tid, gpr, value } => fs
                .regs
                .get(&(*tid, ppc_idl::Reg::Gpr(*gpr)))
                .and_then(ppc_bits::Bv::to_u64)
                .is_some_and(|v| v == *value),
            CondAtom::Mem { loc, value } => {
                let Some(addr) = locations.get(loc) else {
                    return false;
                };
                fs.mem
                    .get(addr)
                    .and_then(ppc_bits::Bv::to_u64)
                    .is_some_and(|v| v == *value)
            }
        }
    }
}

//! A conservative independence relation over [`Transition`]s, for the
//! sleep-set partial-order reduction layer in [`crate::oracle`].
//!
//! Two transitions enabled in the same state are *independent* when
//! applying them in either order reaches the same state and neither
//! disables the other — then exploring both interleavings is redundant,
//! and the sleep-set search prunes one of them without losing any
//! reachable state (so `Outcomes::finals` stays exactly identical to
//! the unreduced search; the POR differential in `tests/oracle_fuzz.rs`
//! pins this).
//!
//! The relation here is footprint-based and deliberately conservative:
//! each transition is assigned read/write sets over the *components* of
//! a [`SystemState`] — per-thread [`crate::ThreadState`]s, per-thread
//! storage propagation lists, and the global storage tables — encoded
//! as bits of a `u64` mask. Transitions are independent exactly when
//! their footprints do not conflict (neither writes what the other
//! reads or writes). Soundness rests on three facts about the model:
//!
//! - a transition's enabling predicate and its effect (including the
//!   eager-progress advance that follows `apply`, which never consults
//!   storage state and stays within the seeded threads) read only
//!   components in its R set and mutate only components in its W set;
//! - any state-dependent part of a footprint below (a barrier's kind,
//!   a propagation's would-commit-coherence probe, an event's origin
//!   thread) is itself computed from components in the transition's R
//!   set, so footprints are stable under independent application;
//! - id allocation (`next_write_id` / `next_barrier_id`) is modelled
//!   as its own written component, so any two allocating transitions
//!   conflict — reordering them would renumber events.
//!
//! When in doubt the relation must say *dependent*: a missing conflict
//! breaks the reduction's exhaustiveness, while a spurious conflict
//! only costs pruning. Threads beyond [`MAX_TRACKED_THREADS`] collapse
//! to a full mask (always dependent) for the same reason.

use crate::storage::StorageTransition;
use crate::system::{SystemState, Transition};
use crate::thread::ThreadTransition;
use crate::types::ThreadId;

/// Footprint masks track this many distinct threads; transitions naming
/// a thread at or beyond it get a full (conflicts-with-everything)
/// mask. Litmus-scale programs have 2–4 threads, so this is never hit
/// in practice — it only bounds the bit layout.
pub const MAX_TRACKED_THREADS: usize = 16;

/// Global storage writes table + writes-seen set.
const GW: u64 = 1 << 32;
/// Global coherence order.
const GC: u64 = 1 << 33;
/// Global barriers table.
const GB: u64 = 1 << 34;
/// Unacknowledged-sync-request set.
const GS: u64 = 1 << 35;
/// The `next_write_id` / `next_barrier_id` allocators.
const ID: u64 = 1 << 36;
/// Everything: the conservative fallback mask.
const ALL: u64 = u64::MAX;

/// The bit for thread `tid`'s [`crate::ThreadState`].
fn t(tid: ThreadId) -> u64 {
    if tid < MAX_TRACKED_THREADS {
        1 << tid
    } else {
        ALL
    }
}

/// The bit for thread `tid`'s storage propagation list.
fn l(tid: ThreadId) -> u64 {
    if tid < MAX_TRACKED_THREADS {
        1 << (MAX_TRACKED_THREADS + tid)
    } else {
        ALL
    }
}

/// The bits for every thread's propagation list (what a sync
/// acknowledgement's enabledness reads).
fn all_lists(threads: usize) -> u64 {
    if threads > MAX_TRACKED_THREADS {
        ALL
    } else {
        ((1u64 << threads) - 1) << MAX_TRACKED_THREADS
    }
}

/// The (read, write) component footprint of `tr` in `state`.
///
/// `tr` must be enabled in `state` (footprints consult the event
/// tables and instance the transition names).
fn footprint(state: &SystemState, tr: &Transition) -> (u64, u64) {
    match tr {
        Transition::Thread(tt) => match tt {
            // Purely thread-local steps: fetching, forwarding from an
            // uncommitted po-previous write, deciding a conditional
            // store as failed, finishing, and committing an `isync`
            // all read and write only the thread's own state.
            ThreadTransition::Fetch { tid, .. }
            | ThreadTransition::SatisfyReadForward { tid, .. }
            | ThreadTransition::CommitStcxFail { tid, .. }
            | ThreadTransition::Finish { tid, .. } => (t(*tid), t(*tid)),
            // Reads the thread's propagation list byte-wise (plus the
            // writes table behind the event ids); mutates only the
            // thread (satisfied read, possibly a new reservation).
            ThreadTransition::SatisfyReadStorage { tid, .. } => (t(*tid) | l(*tid) | GW, t(*tid)),
            // Accepting a write: reads the thread's own list for
            // overlapping writes and the coherence order; writes the
            // thread, its list, the writes tables, coherence, and the
            // id allocator.
            ThreadTransition::CommitWrite { tid, .. }
            | ThreadTransition::CommitStcxSuccess { tid, .. } => (
                t(*tid) | l(*tid) | GW | GC,
                t(*tid) | l(*tid) | GW | GC | ID,
            ),
            ThreadTransition::CommitBarrier { tid, ioid } => {
                let to_storage = match state.threads[*tid]
                    .instances
                    .get(*ioid)
                    .and_then(|i| i.barrier)
                {
                    Some(kind) => kind.goes_to_storage(),
                    // Unknown instance/kind: assume the wider footprint.
                    None => true,
                };
                if to_storage {
                    (t(*tid), t(*tid) | l(*tid) | GB | GS | ID)
                } else {
                    // `isync` commits thread-locally.
                    (t(*tid), t(*tid))
                }
            }
        },
        Transition::Storage(st) => match st {
            StorageTransition::PropagateWrite { write, to } => {
                // Enabledness reads the write tables, the origin
                // thread's list (B-cumulativity gate), the destination
                // list and the coherence order; applying appends to
                // the destination list, may kill the destination
                // thread's reservation, and commits coherence edges
                // when an overlapping write is already there.
                let origin = state.storage.write_origin(*write);
                let r = GW | GC | l(origin) | l(*to) | t(*to);
                let mut w = l(*to) | t(*to);
                if state.storage.would_commit_coherence(*write, *to) {
                    w |= GC;
                }
                (r, w)
            }
            StorageTransition::PropagateBarrier { barrier, to } => {
                let origin = state.storage.barrier_origin(*barrier);
                (GB | l(origin) | l(*to), l(*to))
            }
            StorageTransition::AcknowledgeSync { barrier } => {
                // Enabledness reads every propagation list; applying
                // clears the request and marks the origin thread's
                // instance acknowledged (waking its eager progress).
                let origin = state.storage.barrier_origin(*barrier);
                (GS | GB | all_lists(state.storage.threads), GS | t(origin))
            }
            StorageTransition::PartialCoherence { .. } => (GW | GC, GC),
        },
    }
}

/// Whether `a` and `b` (both enabled in `state`) are independent:
/// applying them in either order commutes to the same state and
/// neither disables the other. Conservative — `false` is always safe.
#[must_use]
pub fn independent(state: &SystemState, a: &Transition, b: &Transition) -> bool {
    let (ra, wa) = footprint(state, a);
    let (rb, wb) = footprint(state, b);
    (wa & rb) | (wb & ra) | (wa & wb) == 0
}

//! Instruction semantics: one builder per instruction family, mirroring
//! the vendor pseudocode line-for-line (paper §3/Fig. 2).
//!
//! Each builder produces a [`ppc_idl::Sem`] whose micro-operations follow
//! the vendor documentation's statement order. Sequencing matters
//! architecturally (§2.1.6): the effective-address computation precedes
//! the data register read in every store, which is what allows a
//! partially executed store's write footprint to be determined before its
//! data arrives.
//!
//! Register *self-reads* are rewritten to local variables (§2.1.3), so
//! each instruction reads and writes every element of its footprint
//! exactly once, and footprints are computable from the opcode fields.
//!
//! Instruction fields are concrete at build time; conditional structure
//! that depends only on fields (e.g. `RA == 0` base selection, `BO`
//! decoding in branches) is resolved *here*, keeping the IDL footprints
//! exact — crucially, `bc` with `BO[0] = 1` performs no CR read at all,
//! so "branch always" creates no false register dependency.

mod arith;
mod branch;
mod cr;
mod loadstore;
mod logical;

use crate::ast::Instruction;
use ppc_idl::{Reg, Sem, SemBuilder};

/// Build the IDL semantics of a decoded instruction.
///
/// Composing this with [`ppc_idl::InstrState::new`] gives the paper's
/// `initial_state : context -> instruction -> instruction_state`.
#[must_use]
pub fn semantics(i: &Instruction) -> Sem {
    use Instruction::*;
    match i {
        B { li, aa, lk } => branch::b(*li, *aa, *lk),
        Bc { bo, bi, bd, aa, lk } => branch::bc(*bo, *bi, *bd, *aa, *lk),
        Bclr { bo, bi, lk, .. } => branch::bc_indirect(Reg::Lr, *bo, *bi, *lk),
        Bcctr { bo, bi, lk, .. } => branch::bc_indirect(Reg::Ctr, *bo, *bi, *lk),
        CrLogical { op, bt, ba, bb } => cr::cr_logical(*op, *bt, *ba, *bb),
        Mcrf { bf, bfa } => cr::mcrf(*bf, *bfa),
        Load {
            size,
            algebraic,
            update,
            byterev,
            rt,
            ra,
            ea,
        } => loadstore::load(*size, *algebraic, *update, *byterev, *rt, *ra, *ea),
        Store {
            size,
            update,
            byterev,
            rs,
            ra,
            ea,
        } => loadstore::store(*size, *update, *byterev, *rs, *ra, *ea),
        Lmw { rt, ra, d } => loadstore::lmw(*rt, *ra, *d),
        Stmw { rs, ra, d } => loadstore::stmw(*rs, *ra, *d),
        Lswi { rt, ra, nb } => loadstore::lswi(*rt, *ra, *nb),
        Stswi { rs, ra, nb } => loadstore::stswi(*rs, *ra, *nb),
        Larx { size, rt, ra, rb } => loadstore::larx(*size, *rt, *ra, *rb),
        Stcx { size, rs, ra, rb } => loadstore::stcx(*size, *rs, *ra, *rb),
        Addi { rt, ra, si } => arith::addi(*rt, *ra, *si, false),
        Addis { rt, ra, si } => arith::addi(*rt, *ra, *si << 16, true),
        Addic { rt, ra, si, rc } => arith::addic(*rt, *ra, *si, *rc),
        Subfic { rt, ra, si } => arith::subfic(*rt, *ra, *si),
        Mulli { rt, ra, si } => arith::mulli(*rt, *ra, *si),
        Arith {
            op,
            rt,
            ra,
            rb,
            oe,
            rc,
        } => arith::xo_arith(*op, *rt, *ra, *rb, *oe, *rc),
        Cmpi { bf, l, ra, si } => arith::cmp_imm(*bf, *l, *ra, *si, true),
        Cmp { bf, l, ra, rb } => arith::cmp_reg(*bf, *l, *ra, *rb, true),
        Cmpli { bf, l, ra, ui } => arith::cmp_imm(*bf, *l, *ra, *ui as i32, false),
        Cmpl { bf, l, ra, rb } => arith::cmp_reg(*bf, *l, *ra, *rb, false),
        LogImm { op, rs, ra, ui } => logical::log_imm(*op, *rs, *ra, *ui),
        Logical { op, rs, ra, rb, rc } => logical::log_reg(*op, *rs, *ra, *rb, *rc),
        Unary { op, rs, ra, rc } => logical::unary(*op, *rs, *ra, *rc),
        Rlwinm {
            rs,
            ra,
            sh,
            mb,
            me,
            rc,
        } => logical::rlwinm(*rs, *ra, *sh, *mb, *me, *rc),
        Rlwnm {
            rs,
            ra,
            rb,
            mb,
            me,
            rc,
        } => logical::rlwnm(*rs, *ra, *rb, *mb, *me, *rc),
        Rlwimi {
            rs,
            ra,
            sh,
            mb,
            me,
            rc,
        } => logical::rlwimi(*rs, *ra, *sh, *mb, *me, *rc),
        Rld {
            op,
            rs,
            ra,
            sh,
            mbe,
            rc,
        } => logical::rld(*op, *rs, *ra, *sh, *mbe, *rc),
        Rldc {
            op,
            rs,
            ra,
            rb,
            mbe,
            rc,
        } => logical::rldc(*op, *rs, *ra, *rb, *mbe, *rc),
        Shift { op, rs, ra, rb, rc } => logical::shift(*op, *rs, *ra, *rb, *rc),
        Srawi { rs, ra, sh, rc } => logical::srawi(*rs, *ra, *sh, *rc),
        Sradi { rs, ra, sh, rc } => logical::sradi(*rs, *ra, *sh, *rc),
        Mfspr { rt, spr } => cr::mfspr(*rt, *spr),
        Mtspr { spr, rs } => cr::mtspr(*spr, *rs),
        Mfcr { rt } => cr::mfcr(*rt),
        Mfocrf { rt, fxm } => cr::mfocrf(*rt, *fxm),
        Mtcrf { fxm, rs } => cr::mtcrf(*fxm, *rs, false),
        Mtocrf { fxm, rs } => cr::mtcrf(*fxm, *rs, true),
        Sync { l } => {
            let mut b = SemBuilder::new();
            b.barrier(if *l == 1 {
                ppc_idl::BarrierKind::Lwsync
            } else {
                ppc_idl::BarrierKind::Sync
            });
            b.build()
        }
        Eieio => {
            let mut b = SemBuilder::new();
            b.barrier(ppc_idl::BarrierKind::Eieio);
            b.build()
        }
        Isync => {
            let mut b = SemBuilder::new();
            b.barrier(ppc_idl::BarrierKind::Isync);
            b.build()
        }
    }
}

/// Append the record-form (`Rc = 1`) CR0 update: compare the 64-bit
/// result with zero (signed) and write `LT‖GT‖EQ‖SO` into CR field 0.
///
/// Only for instructions that do *not* themselves write `XER.SO`:
/// `o.`-forms must pass their freshly computed SO through
/// [`record_cr0_so`] instead — re-reading `XER.SO` here would be a
/// register *self-read*, which the paper's §2.1.3 rewrites to a local
/// variable (and which the thread model's predecessor-walking register
/// reads would resolve to the stale value).
pub(crate) fn record_cr0(b: &mut SemBuilder, result: ppc_idl::Exp) {
    let so = b.local("so");
    b.read_xer_so(so);
    record_cr0_so(b, result, ppc_idl::Exp::Local(so));
}

/// Record-form CR0 update with an explicitly supplied SO value.
pub(crate) fn record_cr0_so(b: &mut SemBuilder, result: ppc_idl::Exp, so: ppc_idl::Exp) {
    let zero = b.c64(0);
    let lt = b.lt_s(result.clone(), zero.clone());
    let gt = b.gt_s(result.clone(), zero.clone());
    let eq = b.eq(result, zero);
    let flags = b.concat(lt, b.concat(gt, b.concat(eq, so)));
    b.write_crf(0, flags);
}

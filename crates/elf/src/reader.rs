//! Parsing and ABI-checking ELF64 images.

use crate::{Elf, Segment, Symbol, EM_PPC64};
use std::collections::BTreeMap;

/// An ELF parsing / ABI-conformance failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ElfError {
    /// Not an ELF file (bad magic) or truncated.
    NotElf,
    /// Not a 64-bit big-endian image.
    WrongFormat(String),
    /// Not a statically linked executable (the paper's front-end
    /// requires static linkage).
    NotStaticExecutable,
    /// Not a PPC64 machine image.
    WrongMachine(u16),
    /// Structurally malformed (bad offsets/sizes).
    Malformed(&'static str),
}

impl std::fmt::Display for ElfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElfError::NotElf => write!(f, "not an ELF image"),
            ElfError::WrongFormat(s) => write!(f, "unsupported ELF format: {s}"),
            ElfError::NotStaticExecutable => {
                write!(f, "not a statically linked executable (ET_EXEC)")
            }
            ElfError::WrongMachine(m) => write!(f, "not a PPC64 image (machine {m})"),
            ElfError::Malformed(what) => write!(f, "malformed ELF: {what}"),
        }
    }
}

impl std::error::Error for ElfError {}

struct Cursor<'a> {
    bytes: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn u16_at(&self, off: usize) -> Result<u16, ElfError> {
        let b = self
            .bytes
            .get(off..off + 2)
            .ok_or(ElfError::Malformed("short read (u16)"))?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32_at(&self, off: usize) -> Result<u32, ElfError> {
        let b = self
            .bytes
            .get(off..off + 4)
            .ok_or(ElfError::Malformed("short read (u32)"))?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64_at(&self, off: usize) -> Result<u64, ElfError> {
        let b = self
            .bytes
            .get(off..off + 8)
            .ok_or(ElfError::Malformed("short read (u64)"))?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn slice_at(&self, off: usize, len: usize) -> Result<&'a [u8], ElfError> {
        self.bytes
            .get(off..off + len)
            .ok_or(ElfError::Malformed("segment out of range"))
    }
}

/// Parse and check an ELF64 big-endian PPC64 statically linked
/// executable.
///
/// # Errors
///
/// Returns an [`ElfError`] for non-ELF input, wrong class/endianness/
/// machine, non-`ET_EXEC` type, or structural inconsistencies.
pub fn parse_elf(bytes: &[u8]) -> Result<Elf, ElfError> {
    if bytes.len() < 64 || bytes[0..4] != [0x7f, b'E', b'L', b'F'] {
        return Err(ElfError::NotElf);
    }
    if bytes[4] != 2 {
        return Err(ElfError::WrongFormat("not ELFCLASS64".to_owned()));
    }
    if bytes[5] != 2 {
        return Err(ElfError::WrongFormat("not big-endian".to_owned()));
    }
    let c = Cursor { bytes };
    let e_type = c.u16_at(16)?;
    if e_type != 2 {
        return Err(ElfError::NotStaticExecutable);
    }
    let machine = c.u16_at(18)?;
    if machine != EM_PPC64 {
        return Err(ElfError::WrongMachine(machine));
    }
    let entry = c.u64_at(24)?;
    let phoff = c.u64_at(32)? as usize;
    let shoff = c.u64_at(40)? as usize;
    let phentsize = c.u16_at(54)? as usize;
    let phnum = c.u16_at(56)? as usize;
    let shentsize = c.u16_at(58)? as usize;
    let shnum = c.u16_at(60)? as usize;

    // Program headers → loadable segments.
    let mut segments = Vec::new();
    for i in 0..phnum {
        let off = phoff + i * phentsize;
        let p_type = c.u32_at(off)?;
        if p_type == 3 {
            // PT_INTERP ⇒ dynamically linked.
            return Err(ElfError::NotStaticExecutable);
        }
        if p_type != 1 {
            continue; // not PT_LOAD
        }
        let flags = c.u32_at(off + 4)?;
        let p_offset = c.u64_at(off + 8)? as usize;
        let vaddr = c.u64_at(off + 16)?;
        let filesz = c.u64_at(off + 32)? as usize;
        let memsz = c.u64_at(off + 40)? as usize;
        if memsz < filesz {
            return Err(ElfError::Malformed("memsz < filesz"));
        }
        let mut seg_bytes = c.slice_at(p_offset, filesz)?.to_vec();
        seg_bytes.resize(memsz, 0);
        segments.push(Segment {
            vaddr,
            bytes: seg_bytes,
            executable: flags & 1 != 0,
        });
    }

    // Symbol table (optional).
    let mut symbols = BTreeMap::new();
    let mut symtab: Option<(usize, usize, usize, usize)> = None; // off, size, entsize, strtab idx
    let mut str_offsets: BTreeMap<usize, (usize, usize)> = BTreeMap::new();
    for i in 0..shnum {
        let off = shoff + i * shentsize;
        let sh_type = c.u32_at(off + 4)?;
        let sh_offset = c.u64_at(off + 24)? as usize;
        let sh_size = c.u64_at(off + 32)? as usize;
        match sh_type {
            2 => {
                let link = c.u32_at(off + 40)? as usize;
                let entsize = c.u64_at(off + 56)? as usize;
                symtab = Some((sh_offset, sh_size, entsize, link));
            }
            3 => {
                str_offsets.insert(i, (sh_offset, sh_size));
            }
            _ => {}
        }
    }
    if let Some((off, size, entsize, link)) = symtab {
        let (str_off, str_size) = str_offsets
            .get(&link)
            .copied()
            .ok_or(ElfError::Malformed("symtab links to a non-strtab"))?;
        let strtab = c.slice_at(str_off, str_size)?;
        if entsize == 0 {
            return Err(ElfError::Malformed("zero symtab entsize"));
        }
        for k in 0..size / entsize {
            let so = off + k * entsize;
            let name_off = c.u32_at(so)? as usize;
            let addr = c.u64_at(so + 8)?;
            let symsize = c.u64_at(so + 16)?;
            if name_off == 0 {
                continue;
            }
            let end = strtab[name_off..]
                .iter()
                .position(|&b| b == 0)
                .ok_or(ElfError::Malformed("unterminated symbol name"))?;
            let name = String::from_utf8_lossy(&strtab[name_off..name_off + end]).into_owned();
            symbols.insert(
                name,
                Symbol {
                    addr,
                    size: symsize,
                },
            );
        }
    }

    Ok(Elf {
        entry,
        segments,
        symbols,
    })
}

//! Transport abstraction for distributed exploration: one connection
//! type over Unix sockets (single-machine, PR 8's original transport)
//! and TCP (multi-machine), plus the robustness knobs every link gets —
//! connect retry with exponential backoff, per-socket read/write
//! deadlines, heartbeat pacing — and the deterministic network-fault
//! injection used by the degradation tests.
//!
//! The wire protocol ([`crate::distrib`]) is byte-identical on both
//! transports; everything here is plumbing, not protocol. TCP
//! connections set `TCP_NODELAY` (the protocol is request/reply-ish and
//! latency-bound, not throughput-bound) and both transports carry the
//! same read deadline, which doubles as the dead-peer detector: a
//! healthy peer sends *something* (worktraffic or a heartbeat) at least
//! every [`NetParams::heartbeat`], so a read that sits silent for
//! [`NetParams::peer_timeout`] means the peer is gone or hung — which,
//! unlike an EOF, a crashed-but-connected or frozen peer never turns
//! into an error on its own.

use std::io;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::time::Duration;

/// Heartbeat period override, in milliseconds
/// (see [`NetParams::from_env`]).
pub const HEARTBEAT_ENV: &str = "PPCMEM_DISTRIB_HEARTBEAT_MS";
/// Dead-peer timeout override, in milliseconds
/// (see [`NetParams::from_env`]).
pub const PEER_TIMEOUT_ENV: &str = "PPCMEM_DISTRIB_PEER_TIMEOUT_MS";

/// Default heartbeat period: each side sends a heartbeat when it has
/// written nothing else for this long.
pub const DEFAULT_HEARTBEAT: Duration = Duration::from_millis(500);
/// Default dead-peer timeout: a link silent for this long is declared
/// dead. Generous relative to the heartbeat so a GC-less Rust process
/// only trips it when genuinely hung or partitioned.
pub const DEFAULT_PEER_TIMEOUT: Duration = Duration::from_secs(10);

/// Bounded-retry connect parameters: attempts, initial backoff, cap.
/// Total worst-case wait ≈ 50+100+...+2000*k ≈ 8 s.
const CONNECT_ATTEMPTS: u32 = 10;
const CONNECT_BACKOFF_BASE: Duration = Duration::from_millis(50);
const CONNECT_BACKOFF_CAP: Duration = Duration::from_secs(2);

/// Link-liveness tunables, shipped to workers in the job frame so both
/// ends of every connection agree on the pacing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetParams {
    /// Send a heartbeat after this much write silence.
    pub heartbeat: Duration,
    /// Declare the peer dead after this much read silence.
    pub peer_timeout: Duration,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            heartbeat: DEFAULT_HEARTBEAT,
            peer_timeout: DEFAULT_PEER_TIMEOUT,
        }
    }
}

impl NetParams {
    /// Defaults overridden by [`HEARTBEAT_ENV`] / [`PEER_TIMEOUT_ENV`]
    /// (milliseconds). The peer timeout is clamped to at least twice
    /// the heartbeat period — a timeout that fires between two healthy
    /// heartbeats would declare live peers dead.
    #[must_use]
    pub fn from_env() -> Self {
        let ms = |key: &str| -> Option<u64> { std::env::var(key).ok()?.parse().ok() };
        let base = NetParams::default();
        NetParams {
            heartbeat: ms(HEARTBEAT_ENV).map_or(base.heartbeat, Duration::from_millis),
            peer_timeout: ms(PEER_TIMEOUT_ENV).map_or(base.peer_timeout, Duration::from_millis),
        }
        .normalised()
    }

    /// Construct from raw millisecond values (the job-frame encoding).
    #[must_use]
    pub fn from_millis(heartbeat_ms: u64, peer_timeout_ms: u64) -> Self {
        NetParams {
            heartbeat: Duration::from_millis(heartbeat_ms.max(1)),
            peer_timeout: Duration::from_millis(peer_timeout_ms.max(1)),
        }
        .normalised()
    }

    /// Enforce `peer_timeout >= 2 * heartbeat`.
    #[must_use]
    pub fn normalised(self) -> Self {
        NetParams {
            heartbeat: self.heartbeat.max(Duration::from_millis(1)),
            peer_timeout: self.peer_timeout.max(self.heartbeat * 2),
        }
    }
}

/// One established link, Unix or TCP. Both variants expose the blocking
/// `Read`/`Write` the protocol needs; the coordinator and workers never
/// care which one they hold.
#[derive(Debug)]
pub enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    /// Connect to a Unix socket (local spawn: the socket file already
    /// exists before the worker is spawned, so no retry).
    pub fn connect_unix(path: &Path) -> io::Result<Conn> {
        Ok(Conn::Unix(UnixStream::connect(path)?))
    }

    /// Connect to a TCP coordinator with bounded retry and exponential
    /// backoff — a worker may legitimately start before the coordinator
    /// binds its port (multi-machine launch order is not controlled).
    pub fn connect_tcp_backoff(addr: &str) -> io::Result<Conn> {
        let mut delay = CONNECT_BACKOFF_BASE;
        let mut last = None;
        for attempt in 0..CONNECT_ATTEMPTS {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay = (delay * 2).min(CONNECT_BACKOFF_CAP);
            }
            match TcpStream::connect(addr) {
                Ok(s) => {
                    s.set_nodelay(true)?;
                    return Ok(Conn::Tcp(s));
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::ConnectionRefused, "no connect attempts made")
        }))
    }

    /// Duplicate the handle (reader thread + writer share the socket).
    pub fn try_clone(&self) -> io::Result<Conn> {
        Ok(match self {
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
        })
    }

    /// Apply the liveness deadlines: reads fail after
    /// [`NetParams::peer_timeout`] of silence (dead-peer detection),
    /// writes fail after the same bound (a peer that stops draining has
    /// effectively hung). TCP additionally sets `TCP_NODELAY`.
    pub fn apply_net(&self, net: &NetParams) -> io::Result<()> {
        let t = Some(net.peer_timeout);
        match self {
            Conn::Unix(s) => {
                s.set_read_timeout(t)?;
                s.set_write_timeout(t)
            }
            Conn::Tcp(s) => {
                s.set_nodelay(true)?;
                s.set_read_timeout(t)?;
                s.set_write_timeout(t)
            }
        }
    }

    /// Blocking/non-blocking toggle (accept loops hand over
    /// non-blocking sockets).
    pub fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_nonblocking(nb),
            Conn::Tcp(s) => s.set_nonblocking(nb),
        }
    }

    /// Half-close the write side (used by fault injection to simulate a
    /// crash mid-frame).
    pub fn shutdown_write(&self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.shutdown(std::net::Shutdown::Write),
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
        }
    }
}

impl io::Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl io::Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// A listening endpoint the coordinator accepts worker links on.
#[derive(Debug)]
pub enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    pub fn bind_unix(path: &Path) -> io::Result<Listener> {
        Ok(Listener::Unix(UnixListener::bind(path)?))
    }

    /// Bind a TCP address, retrying briefly on `EADDRINUSE`:
    /// back-to-back runs (a sequential test ladder) reuse the same
    /// explicit port while the previous socket lingers in `TIME_WAIT`,
    /// and std exposes no `SO_REUSEADDR`.
    pub fn bind_tcp(addr: impl ToSocketAddrs + Copy) -> io::Result<Listener> {
        let mut last = None;
        for attempt in 0..40 {
            if attempt > 0 {
                std::thread::sleep(Duration::from_millis(250));
            }
            match TcpListener::bind(addr) {
                Ok(l) => return Ok(Listener::Tcp(l)),
                Err(e) if e.kind() == io::ErrorKind::AddrInUse => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("retried only on AddrInUse"))
    }

    pub fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
    }

    /// Accept one connection (TCP accepts get `TCP_NODELAY` eagerly;
    /// read/write deadlines are applied later via [`Conn::apply_net`]).
    pub fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                Conn::Tcp(s)
            }),
        }
    }

    /// The bound local port, for loopback workers connecting back to an
    /// OS-assigned (`:0`) listener. `None` for Unix sockets.
    #[must_use]
    pub fn tcp_port(&self) -> Option<u16> {
        match self {
            Listener::Unix(_) => None,
            Listener::Tcp(l) => l.local_addr().ok().map(|a| a.port()),
        }
    }
}

/// `true` for the error kinds a timed-out socket read surfaces
/// (`WouldBlock` on Unix-domain `SO_RCVTIMEO`, `TimedOut` on some TCP
/// stacks) — the dead-peer signal, as opposed to EOF or reset.
#[must_use]
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

// ---- deterministic network-fault injection -----------------------------

/// Fault-injection env var: a network-fault spec applied by one worker's
/// outgoing-message funnel (see [`FaultPlan`] for the grammar). Tests
/// only; unset in production.
pub const FAULT_ENV: &str = "PPCMEM_DISTRIB_FAULT";
/// Which shard [`FAULT_ENV`] applies to (default `0`).
pub const FAULT_SHARD_ENV: &str = "PPCMEM_DISTRIB_FAULT_SHARD";

/// One injected network fault. Counters are 1-based over the worker's
/// outgoing messages of the relevant kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// `drop-route:N` — silently discard the Nth Route (the frame's
    /// sequence number is still consumed, so the receiver detects the
    /// gap on the next message).
    DropRoute(u64),
    /// `delay-route:N:MS` — sleep before sending the Nth Route.
    DelayRoute(u64, Duration),
    /// `truncate-route:N` — write a partial frame for the Nth Route,
    /// then abort the process (a crash mid-write).
    TruncateRoute(u64),
    /// `delay-probe:N:MS` — sleep before the Nth ProbeReply (stale-idle
    /// latency robustness).
    DelayProbe(u64, Duration),
    /// `mute:N` — after N outgoing messages, swallow *every* write
    /// (heartbeats included) while staying alive and reading: a hung
    /// peer only the dead-peer timeout can catch.
    Mute(u64),
}

/// What the send funnel should do with the current outgoing message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Send normally.
    Pass,
    /// Discard (consume the sequence number, write nothing).
    Drop,
    /// Sleep this long, then send normally.
    Delay(Duration),
    /// Write a partial frame and abort the process.
    Truncate,
    /// Swallow silently (do not consume a sequence number; the peer
    /// sees pure silence).
    Mute,
}

/// The kind of outgoing message, for fault matching.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendKind {
    Route,
    ProbeReply,
    Other,
}

/// A parsed fault spec plus its counters.
#[derive(Debug)]
pub struct FaultPlan {
    kind: FaultKind,
    routes: u64,
    probes: u64,
    messages: u64,
    muted: bool,
}

impl FaultPlan {
    /// Parse a spec string (the [`FAULT_ENV`] grammar). Returns `None`
    /// on an empty spec; panics on a malformed one — a fault test with
    /// a typo must fail loudly, not silently pass faultless.
    ///
    /// # Panics
    ///
    /// Panics when `spec` is non-empty but malformed.
    #[must_use]
    pub fn parse(spec: &str) -> Option<FaultPlan> {
        if spec.is_empty() {
            return None;
        }
        let parts: Vec<&str> = spec.split(':').collect();
        let n = |s: &str| -> u64 {
            s.parse()
                .unwrap_or_else(|_| panic!("bad fault count in {FAULT_ENV}: {spec}"))
        };
        let ms = |s: &str| Duration::from_millis(n(s));
        let kind = match (parts.as_slice(), parts.first().copied()) {
            ([_, k], Some("drop-route")) => FaultKind::DropRoute(n(k)),
            ([_, k, d], Some("delay-route")) => FaultKind::DelayRoute(n(k), ms(d)),
            ([_, k], Some("truncate-route")) => FaultKind::TruncateRoute(n(k)),
            ([_, k, d], Some("delay-probe")) => FaultKind::DelayProbe(n(k), ms(d)),
            ([_, k], Some("mute")) => FaultKind::Mute(n(k)),
            _ => panic!("unknown fault spec in {FAULT_ENV}: {spec}"),
        };
        Some(FaultPlan {
            kind,
            routes: 0,
            probes: 0,
            messages: 0,
            muted: false,
        })
    }

    /// Read [`FAULT_ENV`] / [`FAULT_SHARD_ENV`] for this shard.
    #[must_use]
    pub fn from_env(shard: usize) -> Option<FaultPlan> {
        let spec = std::env::var(FAULT_ENV).ok()?;
        let fault_shard: usize = std::env::var(FAULT_SHARD_ENV)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        (shard == fault_shard).then(|| FaultPlan::parse(&spec))?
    }

    /// Account one outgoing message and decide its fate.
    pub fn action(&mut self, kind: SendKind) -> FaultAction {
        if self.muted {
            return FaultAction::Mute;
        }
        self.messages += 1;
        if let FaultKind::Mute(after) = self.kind {
            if self.messages > after {
                self.muted = true;
                return FaultAction::Mute;
            }
        }
        match (kind, self.kind) {
            (SendKind::Route, k) => {
                self.routes += 1;
                match k {
                    FaultKind::DropRoute(n) if self.routes == n => FaultAction::Drop,
                    FaultKind::DelayRoute(n, d) if self.routes == n => FaultAction::Delay(d),
                    FaultKind::TruncateRoute(n) if self.routes == n => FaultAction::Truncate,
                    _ => FaultAction::Pass,
                }
            }
            (SendKind::ProbeReply, FaultKind::DelayProbe(n, d)) => {
                self.probes += 1;
                if self.probes == n {
                    FaultAction::Delay(d)
                } else {
                    FaultAction::Pass
                }
            }
            (SendKind::ProbeReply, _) => {
                self.probes += 1;
                FaultAction::Pass
            }
            (SendKind::Other, _) => FaultAction::Pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_params_normalise_and_clamp() {
        let p = NetParams::from_millis(500, 100);
        assert_eq!(p.heartbeat, Duration::from_millis(500));
        assert_eq!(p.peer_timeout, Duration::from_millis(1000), "clamped to 2x");
        let p = NetParams::from_millis(0, 0);
        assert!(p.heartbeat >= Duration::from_millis(1));
        assert!(p.peer_timeout >= p.heartbeat * 2);
    }

    #[test]
    fn fault_grammar_parses() {
        assert_eq!(
            FaultPlan::parse("drop-route:3").unwrap().kind,
            FaultKind::DropRoute(3)
        );
        assert_eq!(
            FaultPlan::parse("delay-route:2:150").unwrap().kind,
            FaultKind::DelayRoute(2, Duration::from_millis(150))
        );
        assert_eq!(
            FaultPlan::parse("truncate-route:1").unwrap().kind,
            FaultKind::TruncateRoute(1)
        );
        assert_eq!(
            FaultPlan::parse("delay-probe:1:800").unwrap().kind,
            FaultKind::DelayProbe(1, Duration::from_millis(800))
        );
        assert_eq!(FaultPlan::parse("mute:5").unwrap().kind, FaultKind::Mute(5));
        assert!(FaultPlan::parse("").is_none());
    }

    #[test]
    #[should_panic(expected = "unknown fault spec")]
    fn malformed_fault_spec_fails_loudly() {
        let _ = FaultPlan::parse("drop-everything");
    }

    #[test]
    fn drop_route_fires_on_exact_route_not_other_traffic() {
        let mut p = FaultPlan::parse("drop-route:2").unwrap();
        assert_eq!(p.action(SendKind::Other), FaultAction::Pass);
        assert_eq!(p.action(SendKind::Route), FaultAction::Pass);
        assert_eq!(p.action(SendKind::ProbeReply), FaultAction::Pass);
        assert_eq!(p.action(SendKind::Route), FaultAction::Drop);
        assert_eq!(p.action(SendKind::Route), FaultAction::Pass);
    }

    #[test]
    fn mute_swallows_everything_after_threshold() {
        let mut p = FaultPlan::parse("mute:2").unwrap();
        assert_eq!(p.action(SendKind::Route), FaultAction::Pass);
        assert_eq!(p.action(SendKind::Other), FaultAction::Pass);
        assert_eq!(p.action(SendKind::Other), FaultAction::Mute);
        assert_eq!(p.action(SendKind::Route), FaultAction::Mute);
        assert_eq!(p.action(SendKind::ProbeReply), FaultAction::Mute);
    }

    #[test]
    fn delay_probe_counts_probe_replies_only() {
        let mut p = FaultPlan::parse("delay-probe:2:50").unwrap();
        assert_eq!(p.action(SendKind::Route), FaultAction::Pass);
        assert_eq!(p.action(SendKind::ProbeReply), FaultAction::Pass);
        assert_eq!(
            p.action(SendKind::ProbeReply),
            FaultAction::Delay(Duration::from_millis(50))
        );
        assert_eq!(p.action(SendKind::ProbeReply), FaultAction::Pass);
    }
}

//! Quickstart: run the paper's headline test (MP+sync+ctrl, §2.1.1)
//! through the exhaustive oracle and print the set of all allowed final
//! states.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ppcmem::litmus::{parse, run};
use ppcmem::model::ModelParams;

fn main() {
    let src = r"POWER MP+sync+ctrl
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y; 1:r7=1;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | lwz r5,0(r2) ;
 sync         | cmpw r5,r7   ;
 stw r8,0(r2) | beq L        ;
              | L:           ;
              | lwz r4,0(r1) ;
exists (1:r5=1 /\ 1:r4=0)
";
    let test = parse(src).expect("parses");
    println!("Test {}: exhaustive exploration...", test.name);
    let result = run(&test, &ModelParams::default());
    println!(
        "  {} distinct final states over {} explored system states",
        result.finals, result.stats.states
    );
    println!(
        "  condition `exists (1:r5=1 /\\ 1:r4=0)` is {}",
        if result.witnessed {
            "WITNESSED — the speculative load of x is architecturally allowed"
        } else {
            "not witnessed"
        }
    );
    assert!(result.witnessed, "the paper says: Allowed");
    println!("\nTest MP+sync+ctrl: Allowed  (matches the paper)");
}

//! Randomized differential fuzzing of the work-stealing parallel oracle.
//!
//! A seeded [`Prng`] generates small random litmus programs (shared
//! generator in `tests/common`) — 2–4 hardware threads of loads, stores,
//! barriers, address/data/control dependencies, and `lwarx`/`stwcx.`
//! read-modify-write pairs over 2–3 shared word locations — and every
//! program is explored exhaustively by both engines: the sequential
//! depth-first reference and the work-stealing parallel engine (with
//! randomized worker counts, steal-batch sizes, and — for programs with
//! reservation pairs — randomized spurious-stcx-failure permission).
//! The engines must agree *byte for byte* on `Outcomes::finals`, and on
//! the visited-state and transition counts. Any mismatch prints the
//! offending seed and the generated program so the failure replays
//! deterministically.
//!
//! Also here: the `ExploreLimits` truncation contract under the new
//! engine — a deliberately oversized test must come back truncated from
//! `explore_limited` and *inconclusive* (never a silent pass) from the
//! harness, for both the state budget and the wall-clock deadline.
//!
//! Environment knobs (for longer local soaks): `ORACLE_FUZZ_PROGRAMS`
//! (default 200), `ORACLE_FUZZ_SEED` (default fixed, so CI is
//! deterministic; accepts `0x…` hex), and `ORACLE_FUZZ_BUDGET` (the
//! per-program distinct-state budget — raise it to differentially check
//! the bigger tail of generated programs instead of skipping them).
//!
//! The `por_`-prefixed tests are the sleep-set partial-order-reduction
//! differential: reduced exploration must reproduce the unreduced
//! engine's `Outcomes::finals` byte for byte (over a *disjoint* seed
//! range — `ORACLE_POR_SEED`/`ORACLE_POR_PROGRAMS`/`ORACLE_POR_BUDGET`),
//! and the footprint-based independence relation the reduction relies on
//! must actually commute on sampled enabled pairs.

mod common;

use common::{env_u64, gen_program, has_rmw};
use ppcmem::bits::Prng;
use ppcmem::idl::Reg;
use ppcmem::litmus::harness::{run_one, run_suite, HarnessConfig};
use ppcmem::litmus::{build_system, library, parse, run_limited};
use ppcmem::model::{explore_limited, independent, ExploreLimits, ModelParams, SystemState};
use std::time::{Duration, Instant};

/// The outcome of one differential run.
enum FuzzOutcome {
    /// Both engines ran to exhaustion and agreed. Carries whether the
    /// program contained an lwarx/stwcx. pair, for coverage accounting
    /// (the check derives it anyway, so the caller need not regenerate
    /// the program).
    Checked {
        /// The program exercised the reservation machinery.
        rmw: bool,
    },
    /// The sequential reference blew the per-program state budget —
    /// truncated explorations may legitimately visit different prefixes,
    /// so the program is skipped (and counted, so a generator drift that
    /// makes everything oversized fails the test).
    Skipped,
}

/// Walk a bounded random exploration prefix asserting, at every state
/// and for every enabled transition, that the incremental dirty-instance
/// worklist engine and the retained full-rescan reference produce the
/// same successor *and the same advance trace* (set of instances
/// stepped by eager progress). A worklist seeding rule that misses a
/// wake-up would change which instances advance long before it changes
/// finals — the trace comparison catches it at the first divergent
/// transition, with the generating seed attached.
fn advance_trace_differential(initial: &SystemState, seed: u64, steps: usize) {
    let mut rng = Prng::seed_from_u64(seed ^ 0x7ACE_D1FF_0000_0000);
    let mut state = initial.clone();
    for step in 0..steps {
        let ts = state.enumerate_transitions();
        // Enumeration-trace differential alongside the advance one: the
        // per-component transition caches (shared down the walk via the
        // CoW Arcs, so ancestors may have populated them) must agree
        // per-slot with a cache-bypassing rescan on every visited state.
        assert_eq!(
            state.enumerate_traced(),
            state.enumerate_rescan_traced(),
            "fuzz seed {seed:#018x} step {step}: cached enumeration diverged \
             from the full-rescan reference"
        );
        if ts.is_empty() {
            break;
        }
        for t in &ts {
            let (succ_inc, trace_inc) = state.apply_traced(t);
            let (succ_ref, trace_ref) = state.apply_rescan_traced(t);
            assert!(
                succ_inc == succ_ref,
                "fuzz seed {seed:#018x} step {step}: worklist successor differs \
                 from full-rescan reference for {t:?}"
            );
            assert_eq!(
                trace_inc, trace_ref,
                "fuzz seed {seed:#018x} step {step}: advance trace diverged \
                 (worklist skipped or added a wake-up) for {t:?}"
            );
        }
        let pick = rng.gen_range(0..ts.len() as u32) as usize;
        state = state.apply(&ts[pick]);
    }
}

/// Explore one generated program with the sequential engine and the
/// work-stealing engine (randomized thread count and steal batch) and
/// require byte-identical outcomes.
fn differential_check(seed: u64, budget: usize) -> FuzzOutcome {
    let prog = gen_program(seed);
    let test = parse(&prog.source).unwrap_or_else(|e| {
        panic!(
            "fuzz seed {seed:#018x}: generated source failed to parse: {e}\n{}",
            prog.source
        )
    });
    // Engine configuration comes from an independent stream so program
    // shapes stay stable if the configuration menu changes.
    let mut cfg_rng = Prng::seed_from_u64(seed ^ 0x0057_EA1B_A7C4_FFFF);
    let threads: usize = [2, 3, 4][cfg_rng.gen_range(0..3usize)];
    let steal_batch: usize = [1, 2, 7, 64][cfg_rng.gen_range(0..4usize)];
    // For programs with a reservation pair, sometimes also allow
    // spurious store-conditional failures — the extra failure branch is
    // part of the architectural envelope and exercises the restart-free
    // stcx-fail path in `thread.rs`/`system.rs`.
    let rmw = has_rmw(&prog);
    let spurious = rmw && cfg_rng.gen_range(0..4u32) == 0;

    let params = ModelParams {
        steal_batch,
        allow_spurious_stcx_failure: spurious,
        ..ModelParams::default()
    };
    let state = build_system(&test, &params);
    let mem_obs: Vec<(u64, usize)> = test.locations.values().map(|&a| (a, 4)).collect();

    // Pin the incremental advance against the full-rescan reference on
    // a bounded walk before the (much larger) engine differential.
    advance_trace_differential(&state, seed, 10);

    let seq = explore_limited(
        &state,
        &prog.reg_obs,
        &mem_obs,
        &ExploreLimits {
            threads: 1,
            max_states: budget,
            deadline: None,
        },
    );
    if seq.stats.truncated {
        return FuzzOutcome::Skipped;
    }
    let par = explore_limited(
        &state,
        &prog.reg_obs,
        &mem_obs,
        &ExploreLimits {
            threads,
            max_states: budget,
            deadline: None,
        },
    );

    let context = || {
        format!(
            "fuzz seed {seed:#018x} ({threads} workers, steal batch {steal_batch}, \
             spurious stcx {spurious})\n\
             replay: ORACLE_FUZZ_SEED={seed:#x} ORACLE_FUZZ_PROGRAMS=1 \
             cargo test --release --test oracle_fuzz\n{}",
            prog.source
        )
    };
    assert!(
        !par.stats.truncated,
        "work-stealing engine truncated where sequential did not\n{}",
        context()
    );
    assert_eq!(
        seq.stats.states,
        par.stats.states,
        "visited-state count diverged\n{}",
        context()
    );
    assert_eq!(
        seq.stats.transitions,
        par.stats.transitions,
        "transition count diverged\n{}",
        context()
    );
    assert_eq!(
        seq.stats.final_hits,
        par.stats.final_hits,
        "final-hit count diverged\n{}",
        context()
    );
    assert!(
        seq.finals == par.finals,
        "final states diverged (sequential {} vs work-stealing {})\n{}",
        seq.finals.len(),
        par.finals.len(),
        context()
    );
    FuzzOutcome::Checked { rmw }
}

#[test]
fn fuzz_work_stealing_matches_sequential() {
    let programs = env_u64("ORACLE_FUZZ_PROGRAMS", 200) as usize;
    let base = env_u64("ORACLE_FUZZ_SEED", 0x0DDB_A11C_0FFE_E000);
    // Per-program distinct-state budget: programs the sequential
    // reference cannot exhaust under it are skipped, not compared. The
    // default keeps the 200-program sweep in CI-friendly time while
    // still differentially checking the large majority of programs.
    let budget = env_u64("ORACLE_FUZZ_BUDGET", 10_000) as usize;

    let mut checked = 0usize;
    let mut skipped = 0usize;
    let mut rmw_checked = 0usize;
    for i in 0..programs {
        let seed = base.wrapping_add(i as u64);
        // Attach seed + program context to *any* panic from inside the
        // model (e.g. an interpreter error deep in `advance_instance` —
        // which itself names the thread/instance ids), not just to the
        // differential asserts that already format it, so every
        // fuzz-found failure replays deterministically.
        let outcome = std::panic::catch_unwind(|| differential_check(seed, budget)).unwrap_or_else(
            |payload| {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("(non-string panic payload)");
                panic!(
                    "fuzz seed {seed:#018x} panicked\n\
                     replay: ORACLE_FUZZ_SEED={seed:#x} ORACLE_FUZZ_PROGRAMS=1 \
                     cargo test --release --test oracle_fuzz\n\
                     {}\npanic: {msg}",
                    gen_program(seed).source
                )
            },
        );
        match outcome {
            FuzzOutcome::Checked { rmw } => {
                checked += 1;
                rmw_checked += usize::from(rmw);
            }
            FuzzOutcome::Skipped => skipped += 1,
        }
    }
    println!(
        "oracle fuzz: {checked} programs checked ({rmw_checked} with lwarx/stwcx.), \
         {skipped} skipped (base seed {base:#x})"
    );
    // About two thirds of generated programs fit the default budget
    // (lwarx/stwcx. pairs inflate the tail past it — CI's release soak
    // raises ORACLE_FUZZ_BUDGET to differentially check deeper); if
    // coverage drifts below half, the differential sweep is quietly
    // rotting, so fail loudly instead.
    assert!(
        checked >= programs.div_ceil(2),
        "only {checked}/{programs} fuzz programs fit the {budget}-state budget — \
         shrink the generator shapes or raise the budget"
    );
    // Likewise for the reservation machinery: a full-size sweep that
    // never differentially checks an lwarx/stwcx. program means the op
    // menu drifted and the §6.2 paths went dark.
    assert!(
        programs < 50 || rmw_checked > 0,
        "no lwarx/stwcx. program survived the budget in a {programs}-program sweep"
    );
}

// ---- ExploreLimits truncation contract under the new engine ----------

/// An oversized library test (≈34k states, expected Forbidden, so a
/// truncated run can never be rescued by an early witness).
const OVERSIZED: &str = "SB+syncs";

fn oversized_entry() -> ppcmem::litmus::LitmusEntry {
    library()
        .into_iter()
        .find(|e| e.name == OVERSIZED)
        .expect("oversized test in library")
}

#[test]
fn state_budget_truncates_both_engines() {
    let entry = oversized_entry();
    let test = parse(entry.source).expect("library parses");
    let params = ModelParams::default();
    for threads in [1, 4] {
        let r = run_limited(
            &test,
            &params,
            &ExploreLimits {
                threads,
                max_states: 300,
                deadline: None,
            },
        );
        assert!(
            r.stats.truncated,
            "threads={threads}: a 300-state budget must truncate {OVERSIZED}"
        );
        assert!(
            r.stats.states <= 301,
            "threads={threads}: budget overrun ({} states)",
            r.stats.states
        );
        assert!(
            !r.witnessed,
            "threads={threads}: {OVERSIZED} is forbidden; a truncated run must not witness"
        );
    }
}

#[test]
fn past_deadline_truncates_both_engines() {
    let entry = oversized_entry();
    let test = parse(entry.source).expect("library parses");
    let params = ModelParams::default();
    for threads in [1, 4] {
        let r = run_limited(
            &test,
            &params,
            &ExploreLimits {
                threads,
                max_states: ModelParams::DEFAULT_MAX_STATES,
                deadline: Some(Instant::now()),
            },
        );
        assert!(
            r.stats.truncated,
            "threads={threads}: an already-expired deadline must truncate {OVERSIZED}"
        );
    }
}

#[test]
fn harness_reports_oversized_budget_as_inconclusive() {
    let entry = oversized_entry();
    let cfg = HarnessConfig {
        params: ModelParams {
            max_states: 300,
            threads: 4,
            ..ModelParams::default()
        },
        jobs: 1,
        timeout_per_test: None,
        distributed: 0,
        tcp: false,
    };
    let report = run_one(&entry, &cfg);
    assert!(report.truncated, "budget must truncate {OVERSIZED}");
    assert!(
        !report.conclusive(),
        "a truncated, unwitnessed run must be inconclusive, never a silent pass"
    );

    let suite = run_suite(&[entry], &cfg);
    assert!(!suite.all_conclusive_matches());
    assert_eq!(suite.inconclusive().len(), 1);
    assert!(
        suite.mismatches().is_empty(),
        "inconclusive is not the same thing as a mismatch"
    );
    assert!(suite.summary().contains("1 inconclusive"));
}

#[test]
fn harness_reports_expired_deadline_as_inconclusive() {
    let entry = oversized_entry();
    let cfg = HarnessConfig {
        params: ModelParams::default(),
        jobs: 1,
        timeout_per_test: Some(Duration::ZERO),
        distributed: 0,
        tcp: false,
    };
    let report = run_one(&entry, &cfg);
    assert!(
        report.truncated,
        "a zero deadline must truncate {OVERSIZED}"
    );
    assert!(!report.conclusive());
}

// ---- Sleep-set partial-order reduction differential ------------------

/// Explore one generated program with the unreduced sequential engine
/// and with sleep-set reduction enabled (randomized reduced-engine
/// worker count and spill bound, so the reduced frontier codec and the
/// sharded sleep map both get fuzzed), and require the reduction to
/// reproduce `Outcomes::finals` byte for byte while firing no more
/// transitions than the unreduced engine.
fn por_differential_check(seed: u64, budget: usize) -> FuzzOutcome {
    let prog = gen_program(seed);
    let test = parse(&prog.source).unwrap_or_else(|e| {
        panic!(
            "por seed {seed:#018x}: generated source failed to parse: {e}\n{}",
            prog.source
        )
    });
    // Independent configuration stream, as in the engine differential.
    let mut cfg_rng = Prng::seed_from_u64(seed ^ 0x00B5_1EE9_5E75_FFFF);
    let threads: usize = [1, 2, 3][cfg_rng.gen_range(0..3usize)];
    // Sometimes bound the resident frontier so reduced-mode frames
    // (sleep and wake sets included) round-trip through the spill codec.
    let max_resident: usize = [0, 0, 64][cfg_rng.gen_range(0..3usize)];
    let rmw = has_rmw(&prog);
    let spurious = rmw && cfg_rng.gen_range(0..4u32) == 0;

    let params = ModelParams {
        allow_spurious_stcx_failure: spurious,
        ..ModelParams::default()
    };
    let state = build_system(&test, &params);
    let mem_obs: Vec<(u64, usize)> = test.locations.values().map(|&a| (a, 4)).collect();

    let full = explore_limited(
        &state,
        &prog.reg_obs,
        &mem_obs,
        &ExploreLimits {
            threads: 1,
            max_states: budget,
            deadline: None,
        },
    );
    if full.stats.truncated {
        return FuzzOutcome::Skipped;
    }

    let red_params = ModelParams {
        sleep_sets: true,
        max_resident_states: max_resident,
        allow_spurious_stcx_failure: spurious,
        ..ModelParams::default()
    };
    let red_state = build_system(&test, &red_params);
    // Reduced-mode *expansions* can exceed the distinct-state count
    // (wake-up re-visits are counted), so only the unreduced reference
    // decides skipping; the reduced run gets headroom.
    let red = explore_limited(
        &red_state,
        &prog.reg_obs,
        &mem_obs,
        &ExploreLimits {
            threads,
            max_states: budget.saturating_mul(4),
            deadline: None,
        },
    );

    let context = || {
        format!(
            "por seed {seed:#018x} ({threads} reduced workers, max resident {max_resident}, \
             spurious stcx {spurious})\n\
             replay: ORACLE_POR_SEED={seed:#x} ORACLE_POR_PROGRAMS=1 \
             cargo test --release --test oracle_fuzz por_reduced\n{}",
            prog.source
        )
    };
    assert!(
        !red.stats.truncated,
        "reduced engine truncated where the unreduced reference did not\n{}",
        context()
    );
    // Each (state, transition) edge fires at most once under sleep sets
    // (wake-up re-visits only fire previously-slept members), so the
    // reduced transition count can never exceed the unreduced one.
    assert!(
        red.stats.transitions <= full.stats.transitions,
        "reduction fired more transitions ({} vs {})\n{}",
        red.stats.transitions,
        full.stats.transitions,
        context()
    );
    assert!(
        full.finals == red.finals,
        "sleep-set reduction changed the finals (unreduced {} vs reduced {})\n{}",
        full.finals.len(),
        red.finals.len(),
        context()
    );
    FuzzOutcome::Checked { rmw }
}

#[test]
fn por_reduced_matches_unreduced_finals() {
    let programs = env_u64("ORACLE_POR_PROGRAMS", 100) as usize;
    // Disjoint seed base from the engine sweep, so the two differentials
    // cover different program ranges in the same CI run.
    let base = env_u64("ORACLE_POR_SEED", 0x5EE9_5E75_0DD5_EED5);
    let budget = env_u64("ORACLE_POR_BUDGET", 10_000) as usize;

    let mut checked = 0usize;
    let mut skipped = 0usize;
    let mut rmw_checked = 0usize;
    for i in 0..programs {
        let seed = base.wrapping_add(i as u64);
        let outcome = std::panic::catch_unwind(|| por_differential_check(seed, budget))
            .unwrap_or_else(|payload| {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("(non-string panic payload)");
                panic!(
                    "por seed {seed:#018x} panicked\n\
                         replay: ORACLE_POR_SEED={seed:#x} ORACLE_POR_PROGRAMS=1 \
                         cargo test --release --test oracle_fuzz por_reduced\n\
                         {}\npanic: {msg}",
                    gen_program(seed).source
                )
            });
        match outcome {
            FuzzOutcome::Checked { rmw } => {
                checked += 1;
                rmw_checked += usize::from(rmw);
            }
            FuzzOutcome::Skipped => skipped += 1,
        }
    }
    println!(
        "por fuzz: {checked} programs checked ({rmw_checked} with lwarx/stwcx.), \
         {skipped} skipped (base seed {base:#x})"
    );
    assert!(
        checked >= programs.div_ceil(2),
        "only {checked}/{programs} por fuzz programs fit the {budget}-state budget — \
         shrink the generator shapes or raise the budget"
    );
}

/// Walk a bounded random prefix of one generated program, and at every
/// visited state check that each enabled pair the footprint relation
/// deems [`independent`] really commutes: each transition leaves the
/// other enabled, and the two interleavings converge on the *same*
/// successor state. This ties the conservative component-mask relation
/// to the semantic property the sleep-set soundness argument needs.
/// Returns how many independent pairs were checked.
fn por_commutation_check(seed: u64, max_pairs: usize) -> usize {
    let prog = gen_program(seed);
    let test = parse(&prog.source).unwrap_or_else(|e| {
        panic!(
            "por seed {seed:#018x}: generated source failed to parse: {e}\n{}",
            prog.source
        )
    });
    let mut rng = Prng::seed_from_u64(seed ^ 0xC033_07E5_0000_0000);
    let mut state = build_system(&test, &ModelParams::default());
    let mut pairs = 0usize;
    for step in 0..12 {
        let ts = state.enumerate_transitions();
        if ts.is_empty() {
            break;
        }
        'pairs: for i in 0..ts.len() {
            for j in (i + 1)..ts.len() {
                let (a, b) = (&ts[i], &ts[j]);
                if !independent(&state, a, b) {
                    continue;
                }
                let sa = state.apply(a);
                let sb = state.apply(b);
                assert!(
                    sa.enumerate_transitions().contains(b),
                    "por seed {seed:#018x} step {step}: {b:?} claimed independent of \
                     {a:?} but is disabled after it\n{}",
                    prog.source
                );
                assert!(
                    sb.enumerate_transitions().contains(a),
                    "por seed {seed:#018x} step {step}: {a:?} claimed independent of \
                     {b:?} but is disabled after it\n{}",
                    prog.source
                );
                assert!(
                    sa.apply(b) == sb.apply(a),
                    "por seed {seed:#018x} step {step}: independent pair does not \
                     commute ({a:?} vs {b:?})\n{}",
                    prog.source
                );
                pairs += 1;
                if pairs >= max_pairs {
                    break 'pairs;
                }
            }
        }
        let pick = rng.gen_range(0..ts.len() as u32) as usize;
        state = state.apply(&ts[pick]);
    }
    pairs
}

#[test]
fn por_independent_pairs_commute() {
    let programs = env_u64("ORACLE_POR_COMMUTE_PROGRAMS", 40) as usize;
    // Offset from the finals sweep so the two por tests see different
    // programs too.
    let base = env_u64("ORACLE_POR_SEED", 0x5EE9_5E75_0DD5_EED5) ^ 0x00FF_0000_0000_0000;
    let mut total = 0usize;
    for i in 0..programs {
        let seed = base.wrapping_add(i as u64);
        total += por_commutation_check(seed, 16);
    }
    println!("por commutation: {total} independent pairs checked across {programs} programs");
    // If the relation stops finding independent pairs the reduction is
    // silently vacuous (sleep sets would never prune anything).
    assert!(
        total >= programs,
        "only {total} independent pairs in {programs} programs — \
         the independence relation has gone vacuous"
    );
}

/// The reduction on real library tests: a small/medium slice (the full
/// 30-test sweep runs via `conformance --reduced` in CI) must keep the
/// verdict — final-state count, witness, quantified condition — exactly,
/// while firing no more transitions than the unreduced engine.
#[test]
fn por_reduced_library_slice_keeps_verdicts() {
    const SLICE: &[&str] = &[
        "CoWW",
        "CoRR",
        "SB",
        "MP",
        "LB",
        "MP+syncs",
        "MP+sync+addr",
        "MP+sync+ctrl",
    ];
    let limits = ExploreLimits {
        threads: 1,
        max_states: ModelParams::DEFAULT_MAX_STATES,
        deadline: None,
    };
    for name in SLICE {
        let e = library()
            .into_iter()
            .find(|e| e.name == *name)
            .unwrap_or_else(|| panic!("{name} in library"));
        let test = parse(e.source).expect("library parses");
        let full = run_limited(&test, &ModelParams::default(), &limits);
        let red_params = ModelParams {
            sleep_sets: true,
            ..ModelParams::default()
        };
        let red = run_limited(&test, &red_params, &limits);
        assert!(
            !full.stats.truncated && !red.stats.truncated,
            "{name}: library slice must fit the default budget"
        );
        assert_eq!(
            (full.finals, full.witnessed, full.holds),
            (red.finals, red.witnessed, red.holds),
            "{name}: sleep-set reduction changed the verdict"
        );
        assert!(
            red.stats.transitions <= full.stats.transitions,
            "{name}: reduction fired more transitions ({} vs {})",
            red.stats.transitions,
            full.stats.transitions
        );
    }
}

/// Byte-identical finals on a library test, through the same observation
/// extraction the harness uses — not just counts. `MP+syncs` is the
/// largest Forbidden slice member, so agreement is over the full
/// reachable envelope (no early witness can mask a divergence).
#[test]
fn por_reduced_library_finals_byte_identical() {
    let e = library()
        .into_iter()
        .find(|e| e.name == "MP+syncs")
        .expect("MP+syncs in library");
    let test = parse(e.source).expect("library parses");
    let mut regs = Vec::new();
    test.cond.expr.reg_atoms(&mut regs);
    regs.sort_unstable();
    regs.dedup();
    let reg_obs: Vec<(usize, Reg)> = regs.into_iter().map(|(t, g)| (t, Reg::Gpr(g))).collect();
    let mem_obs: Vec<(u64, usize)> = test.locations.values().map(|&a| (a, 4)).collect();
    let limits = ExploreLimits {
        threads: 1,
        max_states: ModelParams::DEFAULT_MAX_STATES,
        deadline: None,
    };
    let full_state = build_system(&test, &ModelParams::default());
    let full = explore_limited(&full_state, &reg_obs, &mem_obs, &limits);
    let red_params = ModelParams {
        sleep_sets: true,
        ..ModelParams::default()
    };
    let red_state = build_system(&test, &red_params);
    let red = explore_limited(&red_state, &reg_obs, &mem_obs, &limits);
    assert!(!full.stats.truncated && !red.stats.truncated);
    assert!(
        full.finals == red.finals,
        "MP+syncs: reduced finals diverged (unreduced {} vs reduced {})",
        full.finals.len(),
        red.finals.len()
    );
}

//! The thread subsystem: trees of in-flight instruction instances.
//!
//! Each hardware thread maintains "a tree of in-flight and committed
//! instruction instances, expressing the programmer-visible aspects of
//! out-of-order and speculative computation" (paper §1.2), "branching at
//! conditional branch or calculated jump points, and discarding un-taken
//! subtrees when branches become committed" (§2.1.1).
//!
//! An instance couples the suspended interpreter state (§2.2) with the
//! statically analysed footprint data "obtained by running the
//! interpreter exhaustively, and a record of the register and memory
//! reads and writes the instruction has performed (cleared if the
//! instruction is restarted)" (§5).

use crate::types::{DigestCell, ThreadId, TransitionCache, WriteId};
use ppc_bits::{Bit, Bv};
use ppc_idl::{analyze_from, BarrierKind, Footprint, InstrState, Reg, RegSlice, Sem};
use ppc_isa::Instruction;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// An instruction-instance identifier, unique within its thread.
///
/// Ids are allocated densely from zero ([`ThreadState::next_id`]), so
/// they double as direct indices into the thread's [`InstanceArena`].
pub type InstanceId = usize;

/// A dense arena of instruction instances, indexed by [`InstanceId`].
///
/// Instance ids are allocated densely from zero, so the arena is a plain
/// `Vec` of slots: lookup is an array index (the instruction-tree walks
/// — `ancestors`, per-bit register resolution, descendant scans — are
/// the hottest loops in successor generation, and each hop used to be a
/// `BTreeMap` search), and id iteration allocates nothing. Pruned
/// instances leave `None` holes; in a live state the slot vector always
/// has length [`ThreadState::next_id`].
///
/// Equality and the canonical codec see only the *live* `(id, instance)`
/// sequence in id order — exactly what the former
/// `BTreeMap<InstanceId, Arc<InstrInstance>>` exposed — so canonical
/// bytes and digests are unchanged by the layout.
#[derive(Clone, Debug, Default)]
pub struct InstanceArena {
    slots: Vec<Option<Arc<InstrInstance>>>,
    live: usize,
}

impl InstanceArena {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        InstanceArena::default()
    }

    /// Number of live instances.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no instance is live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Whether `id` names a live instance.
    #[must_use]
    pub fn contains(&self, id: InstanceId) -> bool {
        self.slots.get(id).is_some_and(Option::is_some)
    }

    /// The live instance at `id`, if any.
    #[must_use]
    pub fn get(&self, id: InstanceId) -> Option<&InstrInstance> {
        self.slots.get(id).and_then(|s| s.as_deref())
    }

    /// Copy-on-write mutable access to the instance at `id` (see
    /// [`ThreadState::inst_mut`], which is the funnel callers use).
    pub(crate) fn make_mut(&mut self, id: InstanceId) -> Option<&mut InstrInstance> {
        self.slots
            .get_mut(id)
            .and_then(Option::as_mut)
            .map(Arc::make_mut)
    }

    /// Insert an instance at its own id (fills the slot, extending the
    /// vector with holes if the id is past the end — decode inserts in
    /// id order, live execution always appends at `next_id`).
    ///
    /// # Panics
    ///
    /// Panics if the slot is already occupied (instance ids are unique).
    pub fn insert(&mut self, inst: Arc<InstrInstance>) {
        let id = inst.id;
        if id >= self.slots.len() {
            self.slots.resize_with(id + 1, || None);
        }
        assert!(self.slots[id].is_none(), "instance id {id} inserted twice");
        self.slots[id] = Some(inst);
        self.live += 1;
    }

    /// Remove (prune) the instance at `id`, leaving a hole.
    pub fn remove(&mut self, id: InstanceId) -> Option<Arc<InstrInstance>> {
        let out = self.slots.get_mut(id).and_then(Option::take);
        if out.is_some() {
            self.live -= 1;
        }
        out
    }

    /// Iterate over live instance ids in ascending order,
    /// allocation-free.
    pub fn ids(&self) -> impl Iterator<Item = InstanceId> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(id, s)| s.as_ref().map(|_| id))
    }

    /// One past the highest id ever allocated (the slot-vector length):
    /// every live id is `< id_bound()`, so `0..id_bound()` plus a
    /// [`InstanceArena::contains`] check walks the arena without
    /// borrowing it across the loop body.
    #[must_use]
    pub fn id_bound(&self) -> usize {
        self.slots.len()
    }

    /// Iterate over live `(id, instance)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (InstanceId, &InstrInstance)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(id, s)| s.as_deref().map(|i| (id, i)))
    }

    /// Iterate over live instances in id order.
    pub fn values(&self) -> impl Iterator<Item = &InstrInstance> + '_ {
        self.slots.iter().filter_map(|s| s.as_deref())
    }
}

impl std::ops::Index<InstanceId> for InstanceArena {
    type Output = InstrInstance;

    fn index(&self, id: InstanceId) -> &InstrInstance {
        self.get(id)
            .unwrap_or_else(|| panic!("no live instance with id {id}"))
    }
}

/// Structural equality over the live `(id, instance)` sequence only —
/// hole layout and slot-vector length are representation details (a
/// decoded arena's vector stops at the highest live id, a live one's at
/// `next_id`), exactly as the former `BTreeMap` compared.
impl PartialEq for InstanceArena {
    fn eq(&self, other: &Self) -> bool {
        self.live == other.live && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl Eq for InstanceArena {}

/// Where a satisfied memory read got its value.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ReadSource {
    /// Forwarded from an (possibly still uncommitted) write of a
    /// po-previous instance of the same thread: `(instance, write index)`.
    Forward(InstanceId, usize),
    /// Satisfied by the storage subsystem; one source write per byte.
    Storage(Vec<WriteId>),
}

/// A satisfied memory read.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SatRead {
    /// Byte address.
    pub addr: u64,
    /// Size in bytes.
    pub size: usize,
    /// The value delivered.
    pub value: Bv,
    /// Where it came from.
    pub source: ReadSource,
    /// Whether this was a load-reserve.
    pub reserve: bool,
}

/// A memory write an instance has performed (locally visible; committed
/// to the storage subsystem by a separate transition).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PendingWrite {
    /// Byte address.
    pub addr: u64,
    /// Size in bytes.
    pub size: usize,
    /// The value.
    pub value: Bv,
    /// The storage-subsystem id once committed.
    pub committed: Option<WriteId>,
    /// Whether this is a store-conditional's write.
    pub conditional: bool,
}

/// A performed register read, with its dataflow sources (for restart
/// cascading).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RegReadRec {
    /// The slice read.
    pub slice: RegSlice,
    /// The assembled value.
    pub value: Bv,
    /// The po-previous instances fragments were taken from (absent for
    /// bits from the thread's initial register state).
    pub sources: BTreeSet<InstanceId>,
}

/// One in-flight (or finished) instruction instance.
#[derive(Clone, Debug)]
pub struct InstrInstance {
    /// Instance id (the paper's `ioid`).
    pub id: InstanceId,
    /// Parent in the instruction tree (`None` for the root).
    pub parent: Option<InstanceId>,
    /// Children (more than one only while branches are unresolved).
    pub children: Vec<InstanceId>,
    /// Fetch address.
    pub addr: u64,
    /// The decoded instruction.
    pub instr: Instruction,
    /// Shared semantics.
    pub sem: Arc<Sem>,
    /// The interpreter state (the suspended continuation).
    pub state: InstrState,
    /// Static footprint from exhaustive analysis at fetch time (shared
    /// with the program cache).
    pub static_fp: Arc<Footprint>,
    /// Current footprint from re-analysis of the partially executed
    /// state (refreshed whenever the instance blocks; shared until then).
    pub dyn_fp: Arc<Footprint>,
    /// Performed register reads.
    pub reg_reads: Vec<RegReadRec>,
    /// Performed register writes.
    pub reg_writes: Vec<(RegSlice, Bv)>,
    /// Satisfied memory reads.
    pub mem_reads: Vec<SatRead>,
    /// An issued but unsatisfied read request `(addr, size, reserve)`.
    pub pending_read: Option<(u64, usize, bool)>,
    /// Performed memory writes (locally visible).
    pub mem_writes: Vec<PendingWrite>,
    /// A store-conditional awaiting its commit decision.
    pub pending_cond_write: bool,
    /// Barrier outcome encountered (the instruction pauses here until
    /// the barrier commits).
    pub barrier: Option<BarrierKind>,
    /// Whether the barrier was committed (sent to storage; `isync`
    /// commits locally).
    pub barrier_committed: bool,
    /// The storage event id of a committed `sync`/`lwsync`/`eieio`.
    pub barrier_id: Option<crate::types::BarrierId>,
    /// Whether a committed sync has been acknowledged.
    pub barrier_acked: bool,
    /// Interpreter reached `Done`.
    pub done: bool,
    /// Finished (committed) — irrevocable.
    pub finished: bool,
    /// Resolved next-instruction address (set by an `NIA` write, or at
    /// `Done` to the successor when no `NIA` write happened).
    pub nia: Option<u64>,
    /// Compute-once cache of this instance's digest contribution
    /// (clone-empties, `PartialEq`-ignored — see [`DigestCell`]).
    /// Invalidated by [`ThreadState::inst_mut`], so after a transition
    /// the thread digest re-hashes only the touched instance; hashing
    /// the suspended interpreter continuations of every untouched
    /// instance per successor was the oracle's single largest cost.
    pub(crate) digest: DigestCell,
}

/// Structural equality of instruction instances. The shared semantics
/// is compared by pointer (instances of the same program share one
/// `Arc<Sem>` per address via the program cache — and [`InstrState`]'s
/// own equality already requires pointer-equal semantics); footprints
/// are compared by content (the dynamic footprint is re-analysed per
/// state, so its `Arc` is not always shared).
impl PartialEq for InstrInstance {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
            && self.parent == other.parent
            && self.children == other.children
            && self.addr == other.addr
            && self.instr == other.instr
            && Arc::ptr_eq(&self.sem, &other.sem)
            && self.state == other.state
            && *self.static_fp == *other.static_fp
            && *self.dyn_fp == *other.dyn_fp
            && self.reg_reads == other.reg_reads
            && self.reg_writes == other.reg_writes
            && self.mem_reads == other.mem_reads
            && self.pending_read == other.pending_read
            && self.mem_writes == other.mem_writes
            && self.pending_cond_write == other.pending_cond_write
            && self.barrier == other.barrier
            && self.barrier_committed == other.barrier_committed
            && self.barrier_id == other.barrier_id
            && self.barrier_acked == other.barrier_acked
            && self.done == other.done
            && self.finished == other.finished
            && self.nia == other.nia
    }
}

impl Eq for InstrInstance {}

impl InstrInstance {
    /// The instance's structural digest contribution, cached
    /// compute-once (see the `digest` field).
    #[must_use]
    pub(crate) fn digest(&self) -> u64 {
        self.digest.get_or_compute(|| self.digest_uncached())
    }

    /// [`InstrInstance::digest`] recomputed from scratch, bypassing the
    /// cache (the `debug_assertions` digest audit's reference). Hashes
    /// the same fields structural equality compares, except those that
    /// are derivable (children mirror parents, `dyn_fp` is a function of
    /// `state`, `barrier_id` of the barrier's commit) — identical to
    /// what the thread-level digest hashed before the per-instance
    /// cache existed.
    #[must_use]
    pub(crate) fn digest_uncached(&self) -> u64 {
        let mut h = crate::types::DigestHasher::new();
        self.parent.hash(&mut h);
        self.addr.hash(&mut h);
        self.state.hash(&mut h);
        self.reg_reads.hash(&mut h);
        self.reg_writes.hash(&mut h);
        self.mem_reads.hash(&mut h);
        self.pending_read.hash(&mut h);
        self.mem_writes.hash(&mut h);
        self.pending_cond_write.hash(&mut h);
        self.barrier.hash(&mut h);
        self.barrier_committed.hash(&mut h);
        self.barrier_acked.hash(&mut h);
        self.done.hash(&mut h);
        self.finished.hash(&mut h);
        self.nia.hash(&mut h);
        h.finish()
    }

    /// Whether the instance's static analysis says it can branch (more
    /// than one possible next address).
    #[must_use]
    pub fn is_branch(&self) -> bool {
        self.static_fp.nias.len() > 1
            || self
                .static_fp
                .nias
                .iter()
                .any(|n| matches!(n, ppc_idl::NiaTarget::Indirect))
    }

    /// The determined memory-write footprints so far: recorded writes
    /// plus (if the remaining execution may still write) the re-analysed
    /// future footprint.
    #[must_use]
    pub fn write_footprint_determined(&self) -> bool {
        self.dyn_fp.mem_writes.is_determined()
    }

    /// Whether any (current or future) write may overlap the range.
    #[must_use]
    pub fn may_write_overlapping(&self, addr: u64, size: usize) -> bool {
        if self
            .mem_writes
            .iter()
            .any(|w| w.addr < addr + size as u64 && addr < w.addr + w.size as u64)
        {
            return true;
        }
        !self.finished && self.dyn_fp.mem_writes.may_overlap(addr, size)
    }

    /// Whether any (current or future) read may overlap the range.
    #[must_use]
    pub fn may_read_overlapping(&self, addr: u64, size: usize) -> bool {
        if self
            .mem_reads
            .iter()
            .any(|r| r.addr < addr + size as u64 && addr < r.addr + r.size as u64)
        {
            return true;
        }
        if let Some((a, s, _)) = self.pending_read {
            if a < addr + size as u64 && addr < a + s as u64 {
                return true;
            }
        }
        !self.done && self.dyn_fp.mem_reads.may_overlap(addr, size)
    }

    /// Refresh the dynamic footprint from the current interpreter state.
    pub fn refresh_dyn_fp(&mut self) {
        if self.done {
            // Nothing left to analyse; the recorded events are the truth.
            let fp = Arc::make_mut(&mut self.dyn_fp);
            fp.mem_reads = ppc_idl::AccessSet::None;
            fp.mem_writes = ppc_idl::AccessSet::None;
        } else if self.static_fp.mem_reads.may_access() || self.static_fp.mem_writes.may_access() {
            self.dyn_fp = Arc::new(analyze_from(&self.state));
        }
        // Otherwise the static footprint (no memory access) stays exact.
    }

    /// Reset to the fetched state (restart): clears all performed events
    /// (paper §5: "cleared if the instruction is restarted").
    ///
    /// # Panics
    ///
    /// Panics if the instance already committed irrevocable events (the
    /// transition preconditions make that impossible).
    pub fn restart(&mut self) {
        assert!(!self.finished, "finished instructions cannot restart");
        assert!(
            self.mem_writes.iter().all(|w| w.committed.is_none()),
            "committed writes cannot restart"
        );
        assert!(!self.barrier_committed, "committed barriers cannot restart");
        self.state = InstrState::new(self.sem.clone());
        self.dyn_fp = self.static_fp.clone();
        self.reg_reads.clear();
        self.reg_writes.clear();
        self.mem_reads.clear();
        self.pending_read = None;
        self.mem_writes.clear();
        self.pending_cond_write = false;
        self.barrier = None;
        self.done = false;
        self.nia = None;
    }
}

/// The per-thread half of a system state.
///
/// Lives behind an `Arc` inside [`crate::SystemState`] so that applying
/// a transition clones only the touched thread (copy-on-write via
/// `Arc::make_mut`); within a thread, each [`InstrInstance`] is itself
/// `Arc`-shared, so mutating one instance deep-clones just that instance
/// while the rest of the instruction tree stays shared with the parent
/// state. All mutation must go through
/// [`crate::SystemState::thread_mut`] (or clone-before-mutate paths
/// equivalent to it) so the cached per-thread digest is invalidated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadState {
    /// This thread's id.
    pub tid: ThreadId,
    /// Initial (architected) register values; unmentioned registers are
    /// zero. Immutable after construction, so it sits behind an `Arc`
    /// and a copy-on-write thread clone bumps a refcount instead of
    /// deep-cloning the map on every applied transition.
    pub init_regs: Arc<BTreeMap<Reg, Bv>>,
    /// All live instances, in a dense id-indexed arena (pruned subtrees
    /// leave holes). Values are `Arc`-shared with predecessor states;
    /// use [`ThreadState::inst_mut`] to get a copy-on-write `&mut`.
    pub instances: InstanceArena,
    /// The root instance (first fetch), if fetched.
    pub root: Option<InstanceId>,
    /// Next instance id.
    pub next_id: usize,
    /// The thread's reservation (from load-reserve), as a footprint.
    pub reservation: Option<(u64, usize)>,
    /// Initial fetch address.
    pub start_addr: u64,
    /// Compute-once cache of [`ThreadState::digest`]. Invalidated by
    /// [`crate::SystemState::thread_mut`]; empty in any CoW clone.
    pub(crate) digest: DigestCell,
    /// Compute-once cache of this thread's enabled transitions (see
    /// [`TransitionCache`]): thread enumeration is a pure function of
    /// this state plus the program and two `ModelParams` knobs (the
    /// cache key), so successor states still sharing this thread `Arc`
    /// replay the cached list. Invalidated wherever `digest` is.
    pub(crate) enum_cache: TransitionCache<crate::thread::ThreadTransition>,
}

impl ThreadState {
    /// A fresh thread with the given initial registers and entry point.
    #[must_use]
    pub fn new(tid: ThreadId, init_regs: BTreeMap<Reg, Bv>, start_addr: u64) -> Self {
        ThreadState {
            tid,
            init_regs: Arc::new(init_regs),
            instances: InstanceArena::new(),
            root: None,
            next_id: 0,
            reservation: None,
            start_addr,
            digest: DigestCell::new(),
            enum_cache: TransitionCache::new(),
        }
    }

    /// Copy-on-write mutable access to one instance: clones the instance
    /// out of shared `Arc`s only if predecessor states still share it.
    /// Invalidates the thread's cached digest (like
    /// [`crate::StorageState`]'s mutating methods do for storage), so
    /// direct use on an owned thread state stays digest-correct even
    /// outside the [`crate::SystemState::thread_mut`] funnel.
    pub fn inst_mut(&mut self, id: InstanceId) -> Option<&mut InstrInstance> {
        self.digest.invalidate();
        self.enum_cache.invalidate();
        let inst = self.instances.make_mut(id)?;
        // `make_mut` only empties the instance's cell when it clones
        // (shared `Arc`); the unshared in-place case must invalidate
        // explicitly, exactly like the thread- and storage-level cells.
        inst.digest.invalidate();
        Some(inst)
    }

    /// The thread's structural digest (reservation + full instance
    /// content), cached compute-once at *two* levels: successor states
    /// share unchanged threads by `Arc`, so only the touched thread is
    /// re-folded — and within it each instance caches its own digest
    /// ([`InstrInstance::digest`]), so the re-fold re-hashes only the
    /// touched instance's content (suspended interpreter continuations
    /// are by far the largest thing hashed anywhere in a state).
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.digest.get_or_compute(|| {
            let mut h = crate::types::DigestHasher::new();
            self.reservation.hash(&mut h);
            for (id, inst) in self.instances.iter() {
                id.hash(&mut h);
                inst.digest().hash(&mut h);
            }
            h.finish()
        })
    }

    /// [`ThreadState::digest`] recomputed from scratch, bypassing both
    /// the thread-level and every instance-level cache — the reference
    /// the `debug_assertions` digest audit in
    /// [`crate::SystemState::digest`] compares stale cells against.
    #[must_use]
    pub fn digest_uncached(&self) -> u64 {
        let mut h = crate::types::DigestHasher::new();
        self.reservation.hash(&mut h);
        for (id, inst) in self.instances.iter() {
            id.hash(&mut h);
            inst.digest_uncached().hash(&mut h);
        }
        h.finish()
    }

    /// The initial value of a register (zeros if unspecified).
    #[must_use]
    pub fn init_reg(&self, r: Reg) -> Bv {
        self.init_regs
            .get(&r)
            .cloned()
            .unwrap_or_else(|| Bv::zeros(r.width()))
    }

    /// Iterate over the po-previous instances of `id`, nearest first.
    pub fn ancestors(&self, id: InstanceId) -> impl Iterator<Item = &InstrInstance> {
        std::iter::successors(
            self.instances[id].parent.map(|p| &self.instances[p]),
            move |i| i.parent.map(|p| &self.instances[p]),
        )
    }

    /// Whether `a` is a strict po-ancestor of `b`.
    #[must_use]
    pub fn is_ancestor(&self, a: InstanceId, b: InstanceId) -> bool {
        self.ancestors(b).any(|i| i.id == a)
    }

    /// Descendants of `id` (its whole subtree, excluding itself).
    #[must_use]
    pub fn descendants(&self, id: InstanceId) -> Vec<InstanceId> {
        let mut out = Vec::new();
        self.for_each_descendant(id, &mut |d| out.push(d));
        out
    }

    /// Visit every descendant of `id` (its whole subtree, excluding
    /// itself), allocation-free — the hot restart scans walk subtrees on
    /// every satisfied read, so they must not build an id `Vec` each
    /// time. Pre-order; recursion depth is bounded by the instance tree
    /// depth, itself bounded by `max_instances_per_thread`.
    pub fn for_each_descendant(&self, id: InstanceId, f: &mut impl FnMut(InstanceId)) {
        for &c in &self.instances[id].children {
            f(c);
            self.for_each_descendant(c, f);
        }
    }

    /// Resolve a register-slice read for instance `reader`: walk the
    /// po-predecessors per bit, taking the most recent performed write
    /// fragment; blocks (returns `None`) if an intervening instance may
    /// still write a needed bit (paper §2.1.2).
    ///
    /// `CIA` is answered from the instance's own address; dependencies
    /// never arise from it (§2.1.4).
    #[must_use]
    pub fn resolve_reg_read(
        &self,
        reader: InstanceId,
        slice: RegSlice,
    ) -> Option<(Bv, BTreeSet<InstanceId>)> {
        if slice.reg == Reg::Cia {
            let v = Bv::from_u64(self.instances[reader].addr, 64).slice(slice.start, slice.len);
            return Some((v, BTreeSet::new()));
        }
        let mut bits = vec![Bit::Undef; slice.len];
        let mut sources = BTreeSet::new();
        'bit: for (k, bitpos) in (slice.start..slice.start + slice.len).enumerate() {
            let bit_slice = RegSlice::new(slice.reg, bitpos, 1);
            for j in self.ancestors(reader) {
                // Did j perform a write covering this bit?
                if let Some((ws, wv)) = j
                    .reg_writes
                    .iter()
                    .rev()
                    .find(|(ws, _)| ws.contains(&bit_slice))
                {
                    bits[k] = wv.bit(bitpos - ws.start);
                    sources.insert(j.id);
                    continue 'bit;
                }
                // Might j still write it?
                if !j.done && j.static_fp.may_write_reg(&bit_slice) {
                    return None; // blocked
                }
            }
            // No predecessor writes it: initial register state.
            bits[k] = self.init_reg(slice.reg).bit(bitpos);
        }
        Some((Bv::from_bits(bits), sources))
    }

    /// The *final* architected value of a register: a read as if by an
    /// instruction po-after the last instance on the (unique, finished)
    /// path. Used for litmus final-condition evaluation.
    #[must_use]
    pub fn final_reg(&self, reg: Reg) -> Bv {
        // Find the deepest instance on the path.
        let mut last = self.root;
        while let Some(l) = last {
            match self.instances[l].children.as_slice() {
                [] => break,
                [c] => last = Some(*c),
                _ => break, // unresolved tree; best effort
            }
        }
        let width = reg.width();
        let mut bits = Vec::with_capacity(width);
        'bit: for bitpos in 0..width {
            let bit_slice = RegSlice::new(reg, bitpos, 1);
            let mut cur = last;
            while let Some(c) = cur {
                let j = &self.instances[c];
                if let Some((ws, wv)) = j
                    .reg_writes
                    .iter()
                    .rev()
                    .find(|(ws, _)| ws.contains(&bit_slice))
                {
                    bits.push(wv.bit(bitpos - ws.start));
                    continue 'bit;
                }
                cur = j.parent;
            }
            bits.push(self.init_reg(reg).bit(bitpos));
        }
        Bv::from_bits(bits)
    }

    /// Compute the transitive restart closure of `seed` over register
    /// dataflow and forwarding edges, then apply the restarts. Returns
    /// the set actually restarted.
    pub fn cascade_restart(&mut self, seed: BTreeSet<InstanceId>) -> BTreeSet<InstanceId> {
        let mut set = seed;
        loop {
            let mut grew = false;
            for id in 0..self.instances.id_bound() {
                let Some(inst) = self.instances.get(id) else {
                    continue;
                };
                if set.contains(&id) {
                    continue;
                }
                let depends = inst
                    .reg_reads
                    .iter()
                    .any(|r| r.sources.iter().any(|s| set.contains(s)))
                    || inst.mem_reads.iter().any(|r| match &r.source {
                        ReadSource::Forward(from, _) => set.contains(from),
                        ReadSource::Storage(_) => false,
                    });
                if depends {
                    set.insert(id);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        for id in &set {
            if let Some(inst) = self.inst_mut(*id) {
                inst.restart();
            }
        }
        set
    }

    /// Prune the untaken subtrees of a *finished* branch: children whose
    /// fetch address differs from the resolved `nia` are discarded
    /// (paper §2.1.1).
    pub fn prune_children(&mut self, id: InstanceId) {
        let Some(nia) = self.instances[id].nia else {
            return;
        };
        let children = self.instances[id].children.clone();
        let (keep, drop): (Vec<_>, Vec<_>) = children
            .into_iter()
            .partition(|&c| self.instances[c].addr == nia);
        self.inst_mut(id).expect("exists").children = keep;
        for d in drop {
            for sub in self.descendants(d) {
                self.instances.remove(sub);
            }
            self.instances.remove(d);
        }
    }

    /// All live instance ids in id order, allocation-free.
    pub fn instance_ids(&self) -> impl Iterator<Item = InstanceId> + '_ {
        self.instances.ids()
    }

    /// Whether every live instance is finished.
    #[must_use]
    pub fn all_finished(&self) -> bool {
        self.instances.values().all(|i| i.finished)
    }
}

/// Thread transitions enumerated by the system layer. All-scalar and
/// `Copy`, so replaying a cached enumeration is a flat memcpy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ThreadTransition {
    /// Fetch and decode the instruction at `addr` as a new child of
    /// `parent` (or as the root).
    Fetch {
        /// Thread.
        tid: ThreadId,
        /// Parent instance.
        parent: Option<InstanceId>,
        /// Fetch address.
        addr: u64,
    },
    /// Satisfy a pending read by forwarding from an uncommitted
    /// po-previous write (paper §2.1.5 / PPOCA).
    SatisfyReadForward {
        /// Thread.
        tid: ThreadId,
        /// Reading instance.
        ioid: InstanceId,
        /// Source instance.
        from: InstanceId,
        /// Index into the source's `mem_writes`.
        windex: usize,
    },
    /// Satisfy a pending read from the storage subsystem.
    SatisfyReadStorage {
        /// Thread.
        tid: ThreadId,
        /// Reading instance.
        ioid: InstanceId,
    },
    /// Commit one performed memory write to the storage subsystem.
    CommitWrite {
        /// Thread.
        tid: ThreadId,
        /// Instance.
        ioid: InstanceId,
        /// Index into `mem_writes`.
        windex: usize,
    },
    /// Decide a store-conditional: commit its write (success) — requires
    /// a valid reservation.
    CommitStcxSuccess {
        /// Thread.
        tid: ThreadId,
        /// Instance.
        ioid: InstanceId,
    },
    /// Decide a store-conditional: fail it (no write reaches storage).
    CommitStcxFail {
        /// Thread.
        tid: ThreadId,
        /// Instance.
        ioid: InstanceId,
    },
    /// Commit a barrier (send `sync`/`lwsync`/`eieio` to storage;
    /// `isync` commits thread-locally).
    CommitBarrier {
        /// Thread.
        tid: ThreadId,
        /// Instance.
        ioid: InstanceId,
    },
    /// Finish (commit) an instruction: its behaviour is now irrevocable;
    /// prunes untaken subtrees if it was a branch.
    Finish {
        /// Thread.
        tid: ThreadId,
        /// Instance.
        ioid: InstanceId,
    },
}

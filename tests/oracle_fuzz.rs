//! Randomized differential fuzzing of the work-stealing parallel oracle.
//!
//! A seeded [`Prng`] generates small random litmus programs — 2–4
//! hardware threads of loads, stores, barriers, and address/data/control
//! dependencies over 2–3 shared word locations — and every program is
//! explored exhaustively by both engines: the sequential depth-first
//! reference and the work-stealing parallel engine (with randomized
//! worker counts and steal-batch sizes). The engines must agree *byte
//! for byte* on `Outcomes::finals`, and on the visited-state and
//! transition counts. Any mismatch prints the offending seed and the
//! generated program so the failure replays deterministically.
//!
//! Also here: the `ExploreLimits` truncation contract under the new
//! engine — a deliberately oversized test must come back truncated from
//! `explore_limited` and *inconclusive* (never a silent pass) from the
//! harness, for both the state budget and the wall-clock deadline.
//!
//! Environment knobs (for longer local soaks): `ORACLE_FUZZ_PROGRAMS`
//! (default 200), `ORACLE_FUZZ_SEED` (default fixed, so CI is
//! deterministic; accepts `0x…` hex), and `ORACLE_FUZZ_BUDGET` (the
//! per-program distinct-state budget — raise it to differentially check
//! the bigger tail of generated programs instead of skipping them).

use ppcmem::bits::Prng;
use ppcmem::idl::Reg;
use ppcmem::litmus::harness::{run_one, run_suite, HarnessConfig};
use ppcmem::litmus::{build_system, library, parse, run_limited};
use ppcmem::model::{explore_limited, ExploreLimits, ModelParams};
use std::time::{Duration, Instant};

/// Shared memory locations the generator draws from.
const LOC_NAMES: [&str; 3] = ["x", "y", "z"];

/// Barrier menu (everything the front end accepts that reaches the
/// model: full sync, lwsync, eieio, and the execution barrier isync).
const BARRIERS: [&str; 4] = ["sync", "lwsync", "eieio", "isync"];

/// One generated litmus program plus the observation footprint the
/// differential check explores with.
struct GenProgram {
    /// The `.litmus` source text (fed through the real parser, so the
    /// fuzzer also exercises the front end).
    source: String,
    /// Every load destination register, by thread.
    reg_obs: Vec<(usize, Reg)>,
}

/// Generate one random program from `seed`.
///
/// Shapes are kept small enough that exhaustive exploration stays in
/// CI-friendly territory: thread counts are weighted toward 2–3, and
/// per-thread operation counts shrink as the thread count grows (the
/// state space is roughly exponential in total operations).
fn gen_program(seed: u64) -> GenProgram {
    let mut rng = Prng::seed_from_u64(seed);
    let nthreads: usize = [2, 2, 2, 3, 3, 4][rng.gen_range(0..6usize)];
    let nlocs: usize = rng.gen_range(2..4usize);
    // The state space is roughly exponential in the *total* number of
    // memory operations, so the generator budgets operations across the
    // whole program (3 or 4), not per thread: every thread gets at least
    // one, the surplus lands at random (capped at 3 per thread).
    let total_ops = (3 + rng.gen_range(0..2usize)).max(nthreads);
    let mut ops_of = vec![1usize; nthreads];
    let mut surplus = total_ops.saturating_sub(nthreads);
    while surplus > 0 {
        let t = rng.gen_range(0..nthreads);
        if ops_of[t] < 3 {
            ops_of[t] += 1;
            surplus -= 1;
        }
    }

    let mut reg_obs: Vec<(usize, Reg)> = Vec::new();
    let mut threads: Vec<Vec<String>> = Vec::new();
    for (tid, &nops) in ops_of.iter().enumerate() {
        let mut lines: Vec<String> = Vec::new();
        // r1..r{nlocs} hold location addresses; fresh value registers
        // are allocated from r4 up (r0 is avoided: it reads as zero in
        // D-form addressing).
        let mut next_reg: u8 = 4;
        let mut alloc = || {
            let r = next_reg;
            next_reg += 1;
            r
        };
        // Destination of the most recent load, for dependency ops.
        let mut last_load: Option<u8> = None;
        for op in 0..nops {
            let loc_reg = 1 + rng.gen_range(0..nlocs as u8);
            let kind = rng.gen_range(0..10u32);
            match kind {
                // Plain store of a small constant.
                0..=2 => {
                    let rc = alloc();
                    let k = rng.gen_range(1..3u64);
                    lines.push(format!("li r{rc},{k}"));
                    lines.push(format!("stw r{rc},0(r{loc_reg})"));
                }
                // Plain load.
                3..=5 => {
                    let rd = alloc();
                    lines.push(format!("lwz r{rd},0(r{loc_reg})"));
                    last_load = Some(rd);
                    reg_obs.push((tid, Reg::Gpr(rd)));
                }
                // A barrier.
                6 => {
                    lines.push(BARRIERS[rng.gen_range(0..BARRIERS.len())].to_owned());
                }
                // Address-dependent load (falls back to a plain load when
                // no prior load exists to depend on).
                7 => {
                    let rd = alloc();
                    if let Some(rp) = last_load {
                        let rt = alloc();
                        lines.push(format!("xor r{rt},r{rp},r{rp}"));
                        lines.push(format!("lwzx r{rd},r{loc_reg},r{rt}"));
                    } else {
                        lines.push(format!("lwz r{rd},0(r{loc_reg})"));
                    }
                    last_load = Some(rd);
                    reg_obs.push((tid, Reg::Gpr(rd)));
                }
                // Data-dependent store.
                8 => {
                    let rt = alloc();
                    let k = rng.gen_range(1..3u64);
                    if let Some(rp) = last_load {
                        lines.push(format!("xor r{rt},r{rp},r{rp}"));
                        lines.push(format!("addi r{rt},r{rt},{k}"));
                    } else {
                        lines.push(format!("li r{rt},{k}"));
                    }
                    lines.push(format!("stw r{rt},0(r{loc_reg})"));
                }
                // Control-dependent store (an always-taken compare/branch
                // off the last load, as in the MP+sync+ctrl family).
                _ => {
                    let rc = alloc();
                    let k = rng.gen_range(1..3u64);
                    if let Some(rp) = last_load {
                        let label = format!("LC{tid}x{op}");
                        lines.push(format!("cmpw r{rp},r{rp}"));
                        lines.push(format!("beq {label}"));
                        lines.push(format!("{label}:"));
                    }
                    lines.push(format!("li r{rc},{k}"));
                    lines.push(format!("stw r{rc},0(r{loc_reg})"));
                }
            }
        }
        threads.push(lines);
    }

    // Init block: address registers for every thread, zeroed locations.
    let mut init = String::new();
    for tid in 0..nthreads {
        for (i, loc) in LOC_NAMES.iter().take(nlocs).enumerate() {
            init.push_str(&format!("{tid}:r{}={loc}; ", i + 1));
        }
        init.push('\n');
    }
    for loc in LOC_NAMES.iter().take(nlocs) {
        init.push_str(&format!("{loc}=0; "));
    }

    // Column-per-thread code table.
    let header: Vec<String> = (0..nthreads).map(|t| format!("P{t}")).collect();
    let mut table = format!(" {} ;\n", header.join(" | "));
    let rows = threads.iter().map(Vec::len).max().unwrap_or(0);
    for r in 0..rows {
        let cells: Vec<&str> = threads
            .iter()
            .map(|t| t.get(r).map_or("", String::as_str))
            .collect();
        table.push_str(&format!(" {} ;\n", cells.join(" | ")));
    }

    // A plausible exists-condition over the loaded registers (the
    // differential check observes the registers directly, but this keeps
    // the generated source a complete, parser-valid litmus test).
    let cond = if reg_obs.is_empty() {
        "exists (true)".to_owned()
    } else {
        let atoms: Vec<String> = reg_obs
            .iter()
            .map(|&(tid, reg)| {
                let Reg::Gpr(g) = reg else { unreachable!() };
                format!("{tid}:r{g}={}", rng.gen_range(0..3u64))
            })
            .collect();
        format!("exists ({})", atoms.join(" /\\ "))
    };

    GenProgram {
        source: format!("POWER FUZZ_{seed:016x}\n{{\n{init}\n}}\n{table}{cond}\n"),
        reg_obs,
    }
}

/// The outcome of one differential run.
enum FuzzOutcome {
    /// Both engines ran to exhaustion and agreed.
    Checked,
    /// The sequential reference blew the per-program state budget —
    /// truncated explorations may legitimately visit different prefixes,
    /// so the program is skipped (and counted, so a generator drift that
    /// makes everything oversized fails the test).
    Skipped,
}

/// Explore one generated program with the sequential engine and the
/// work-stealing engine (randomized thread count and steal batch) and
/// require byte-identical outcomes.
fn differential_check(seed: u64, budget: usize) -> FuzzOutcome {
    let prog = gen_program(seed);
    let test = parse(&prog.source).unwrap_or_else(|e| {
        panic!(
            "fuzz seed {seed:#018x}: generated source failed to parse: {e}\n{}",
            prog.source
        )
    });
    // Engine configuration comes from an independent stream so program
    // shapes stay stable if the configuration menu changes.
    let mut cfg_rng = Prng::seed_from_u64(seed ^ 0x0057_EA1B_A7C4_FFFF);
    let threads: usize = [2, 3, 4][cfg_rng.gen_range(0..3usize)];
    let steal_batch: usize = [1, 2, 7, 64][cfg_rng.gen_range(0..4usize)];

    let params = ModelParams {
        steal_batch,
        ..ModelParams::default()
    };
    let state = build_system(&test, &params);
    let mem_obs: Vec<(u64, usize)> = test.locations.values().map(|&a| (a, 4)).collect();

    let seq = explore_limited(
        &state,
        &prog.reg_obs,
        &mem_obs,
        &ExploreLimits {
            threads: 1,
            max_states: budget,
            deadline: None,
        },
    );
    if seq.stats.truncated {
        return FuzzOutcome::Skipped;
    }
    let par = explore_limited(
        &state,
        &prog.reg_obs,
        &mem_obs,
        &ExploreLimits {
            threads,
            max_states: budget,
            deadline: None,
        },
    );

    let context = || {
        format!(
            "fuzz seed {seed:#018x} ({threads} workers, steal batch {steal_batch})\n\
             replay: ORACLE_FUZZ_SEED={seed:#x} ORACLE_FUZZ_PROGRAMS=1 \
             cargo test --release --test oracle_fuzz\n{}",
            prog.source
        )
    };
    assert!(
        !par.stats.truncated,
        "work-stealing engine truncated where sequential did not\n{}",
        context()
    );
    assert_eq!(
        seq.stats.states,
        par.stats.states,
        "visited-state count diverged\n{}",
        context()
    );
    assert_eq!(
        seq.stats.transitions,
        par.stats.transitions,
        "transition count diverged\n{}",
        context()
    );
    assert_eq!(
        seq.stats.final_hits,
        par.stats.final_hits,
        "final-hit count diverged\n{}",
        context()
    );
    assert!(
        seq.finals == par.finals,
        "final states diverged (sequential {} vs work-stealing {})\n{}",
        seq.finals.len(),
        par.finals.len(),
        context()
    );
    FuzzOutcome::Checked
}

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Err(_) => default,
        Ok(v) => {
            let v = v.trim();
            let parsed = v
                .strip_prefix("0x")
                .map_or_else(|| v.parse().ok(), |h| u64::from_str_radix(h, 16).ok());
            parsed.unwrap_or_else(|| panic!("{name}: unparseable value `{v}`"))
        }
    }
}

#[test]
fn fuzz_work_stealing_matches_sequential() {
    let programs = env_u64("ORACLE_FUZZ_PROGRAMS", 200) as usize;
    let base = env_u64("ORACLE_FUZZ_SEED", 0x0DDB_A11C_0FFE_E000);
    // Per-program distinct-state budget: programs the sequential
    // reference cannot exhaust under it are skipped, not compared. The
    // default keeps the 200-program sweep in CI-friendly time while
    // still differentially checking the large majority of programs.
    let budget = env_u64("ORACLE_FUZZ_BUDGET", 10_000) as usize;

    let mut checked = 0usize;
    let mut skipped = 0usize;
    for i in 0..programs {
        let seed = base.wrapping_add(i as u64);
        match differential_check(seed, budget) {
            FuzzOutcome::Checked => checked += 1,
            FuzzOutcome::Skipped => skipped += 1,
        }
    }
    println!("oracle fuzz: {checked} programs checked, {skipped} skipped (base seed {base:#x})");
    // The generator is tuned so the vast majority of programs fit the
    // budget; if that drifts, the differential coverage quietly rots, so
    // fail loudly instead.
    assert!(
        checked >= programs.div_ceil(2),
        "only {checked}/{programs} fuzz programs fit the {budget}-state budget — \
         shrink the generator shapes or raise the budget"
    );
}

// ---- ExploreLimits truncation contract under the new engine ----------

/// An oversized library test (≈34k states, expected Forbidden, so a
/// truncated run can never be rescued by an early witness).
const OVERSIZED: &str = "SB+syncs";

fn oversized_entry() -> ppcmem::litmus::LitmusEntry {
    library()
        .into_iter()
        .find(|e| e.name == OVERSIZED)
        .expect("oversized test in library")
}

#[test]
fn state_budget_truncates_both_engines() {
    let entry = oversized_entry();
    let test = parse(entry.source).expect("library parses");
    let params = ModelParams::default();
    for threads in [1, 4] {
        let r = run_limited(
            &test,
            &params,
            &ExploreLimits {
                threads,
                max_states: 300,
                deadline: None,
            },
        );
        assert!(
            r.stats.truncated,
            "threads={threads}: a 300-state budget must truncate {OVERSIZED}"
        );
        assert!(
            r.stats.states <= 301,
            "threads={threads}: budget overrun ({} states)",
            r.stats.states
        );
        assert!(
            !r.witnessed,
            "threads={threads}: {OVERSIZED} is forbidden; a truncated run must not witness"
        );
    }
}

#[test]
fn past_deadline_truncates_both_engines() {
    let entry = oversized_entry();
    let test = parse(entry.source).expect("library parses");
    let params = ModelParams::default();
    for threads in [1, 4] {
        let r = run_limited(
            &test,
            &params,
            &ExploreLimits {
                threads,
                max_states: ModelParams::DEFAULT_MAX_STATES,
                deadline: Some(Instant::now()),
            },
        );
        assert!(
            r.stats.truncated,
            "threads={threads}: an already-expired deadline must truncate {OVERSIZED}"
        );
    }
}

#[test]
fn harness_reports_oversized_budget_as_inconclusive() {
    let entry = oversized_entry();
    let cfg = HarnessConfig {
        params: ModelParams {
            max_states: 300,
            threads: 4,
            ..ModelParams::default()
        },
        jobs: 1,
        timeout_per_test: None,
    };
    let report = run_one(&entry, &cfg);
    assert!(report.truncated, "budget must truncate {OVERSIZED}");
    assert!(
        !report.conclusive(),
        "a truncated, unwitnessed run must be inconclusive, never a silent pass"
    );

    let suite = run_suite(&[entry], &cfg);
    assert!(!suite.all_conclusive_matches());
    assert_eq!(suite.inconclusive().len(), 1);
    assert!(
        suite.mismatches().is_empty(),
        "inconclusive is not the same thing as a mismatch"
    );
    assert!(suite.summary().contains("1 inconclusive"));
}

#[test]
fn harness_reports_expired_deadline_as_inconclusive() {
    let entry = oversized_entry();
    let cfg = HarnessConfig {
        params: ModelParams::default(),
        jobs: 1,
        timeout_per_test: Some(Duration::ZERO),
    };
    let report = run_one(&entry, &cfg);
    assert!(
        report.truncated,
        "a zero deadline must truncate {OVERSIZED}"
    );
    assert!(!report.conclusive());
}

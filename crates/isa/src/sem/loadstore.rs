//! Fixed-point load/store semantics, including update forms,
//! byte-reversed forms, multiple/string forms, and load-reserve /
//! store-conditional.
//!
//! Statement order follows the vendor pseudocode: base-register read(s)
//! and the `EA` computation come first, then the memory access, then any
//! update write-back — so the memory footprint of a partially executed
//! access becomes determined as early as architecturally possible
//! (§2.1.6).

use crate::ast::Ea;
use crate::sem::record_cr0;
use ppc_bits::Bv;
use ppc_idl::{Local, Reg, Sem, SemBuilder};

/// Compute `EA` into a local: `(RA|0) + EXTS(D)` or `(RA|0) + (RB)`;
/// update forms use `RA` directly (RA=0 is an invalid form, rejected at
/// decode).
fn effective_address(b: &mut SemBuilder, ra: u8, ea: Ea, update: bool) -> Local {
    let base = b.local("b");
    if update {
        b.read_reg(base, Reg::Gpr(ra));
    } else {
        b.reg_or_zero(base, ra);
    }
    let eal = b.local("EA");
    match ea {
        Ea::D(d) => {
            let disp = b.konst(Bv::from_i64(i64::from(d), 64));
            b.assign(eal, b.add(b.l(base), disp));
        }
        Ea::Rb(rb) => {
            let idx = b.local("idx");
            b.read_reg(idx, Reg::Gpr(rb));
            b.assign(eal, b.add(b.l(base), b.l(idx)));
        }
    }
    eal
}

/// The generic fixed-point load.
pub(crate) fn load(
    size: u8,
    algebraic: bool,
    update: bool,
    byterev: bool,
    rt: u8,
    ra: u8,
    ea: Ea,
) -> Sem {
    let mut b = SemBuilder::new();
    let eal = effective_address(&mut b, ra, ea, update);
    let m = b.local("m");
    b.read_mem(m, b.l(eal), usize::from(size));
    let v = if byterev {
        b.byte_reverse(b.l(m))
    } else {
        b.l(m)
    };
    let v = if algebraic {
        b.exts(v, 64)
    } else {
        b.extz(v, 64)
    };
    b.write_reg(Reg::Gpr(rt), v);
    if update {
        b.write_reg(Reg::Gpr(ra), b.l(eal));
    }
    b.build()
}

/// The generic fixed-point store.
pub(crate) fn store(size: u8, update: bool, byterev: bool, rs: u8, ra: u8, ea: Ea) -> Sem {
    let mut b = SemBuilder::new();
    let eal = effective_address(&mut b, ra, ea, update);
    let data = b.local("data");
    let bits = usize::from(size) * 8;
    if size == 8 {
        b.read_reg(data, Reg::Gpr(rs));
    } else {
        b.read_reg_slice(data, Reg::Gpr(rs), 64 - bits, bits);
    }
    let v = if byterev {
        b.byte_reverse(b.l(data))
    } else {
        b.l(data)
    };
    b.write_mem(b.l(eal), usize::from(size), v);
    if update {
        b.write_reg(Reg::Gpr(ra), b.l(eal));
    }
    b.build()
}

/// `lmw RT,D(RA)`: `for r = RT to 31 do GPR[r] := MEM(EA + (r−RT)*4, 4)`.
pub(crate) fn lmw(rt: u8, ra: u8, d: i32) -> Sem {
    let mut b = SemBuilder::new();
    let eal = effective_address(&mut b, ra, Ea::D(d), false);
    let r = b.local("r");
    let m = b.local("m");
    let addr = b.local("addr");
    b.for_loop(r, b.c64(u64::from(rt)), b.c64(31), false, |b| {
        let off = b.mul_low(b.sub(b.l(r), b.c64(u64::from(rt))), b.c64(4));
        b.assign(addr, b.add(b.l(eal), off));
        b.read_mem(m, b.l(addr), 4);
        b.write_gpr_dyn(b.l(r), b.extz(b.l(m), 64));
    });
    b.build()
}

/// `stmw RS,D(RA)`.
pub(crate) fn stmw(rs: u8, ra: u8, d: i32) -> Sem {
    let mut b = SemBuilder::new();
    let eal = effective_address(&mut b, ra, Ea::D(d), false);
    let r = b.local("r");
    let w = b.local("w");
    let addr = b.local("addr");
    b.for_loop(r, b.c64(u64::from(rs)), b.c64(31), false, |b| {
        let off = b.mul_low(b.sub(b.l(r), b.c64(u64::from(rs))), b.c64(4));
        b.assign(addr, b.add(b.l(eal), off));
        b.read_gpr_dyn(w, b.l(r));
        b.write_mem(b.l(addr), 4, b.slice(b.l(w), 32, 32));
    });
    b.build()
}

/// `lswi RT,RA,NB`: load string word immediate. `NB = 0` means 32 bytes.
/// Unrolled at build time (fields are concrete), loading whole registers
/// where possible and zero-padding the tail, wrapping `r31 → r0`.
pub(crate) fn lswi(rt: u8, ra: u8, nb: u8) -> Sem {
    let n = if nb == 0 { 32usize } else { usize::from(nb) };
    let mut b = SemBuilder::new();
    let base = b.local("b");
    b.reg_or_zero(base, ra);
    let mut reg = rt;
    let mut remaining = n;
    let mut offset = 0u64;
    while remaining > 0 {
        let chunk = remaining.min(4);
        let m = b.local(&format!("m{offset}"));
        b.read_mem(m, b.add(b.l(base), b.c64(offset)), chunk);
        // The word is filled from the left (big-endian), zero-padded.
        let padded = if chunk == 4 {
            b.l(m)
        } else {
            let pad = b.cn(0, (4 - chunk) * 8);
            b.concat(b.l(m), pad)
        };
        b.write_reg(Reg::Gpr(reg), b.extz(padded, 64));
        reg = (reg + 1) % 32;
        remaining -= chunk;
        offset += chunk as u64;
    }
    b.build()
}

/// `stswi RS,RA,NB`.
pub(crate) fn stswi(rs: u8, ra: u8, nb: u8) -> Sem {
    let n = if nb == 0 { 32usize } else { usize::from(nb) };
    let mut b = SemBuilder::new();
    let base = b.local("b");
    b.reg_or_zero(base, ra);
    let mut reg = rs;
    let mut remaining = n;
    let mut offset = 0u64;
    while remaining > 0 {
        let chunk = remaining.min(4);
        let w = b.local(&format!("w{offset}"));
        // Bytes come from the left of the low word.
        b.read_reg_slice(w, Reg::Gpr(reg), 32, chunk * 8);
        b.write_mem(b.add(b.l(base), b.c64(offset)), chunk, b.l(w));
        reg = (reg + 1) % 32;
        remaining -= chunk;
        offset += chunk as u64;
    }
    b.build()
}

/// `lwarx/ldarx`: load and reserve.
pub(crate) fn larx(size: u8, rt: u8, ra: u8, rb: u8) -> Sem {
    let mut b = SemBuilder::new();
    let eal = effective_address(&mut b, ra, Ea::Rb(rb), false);
    let m = b.local("m");
    b.read_mem_reserve(m, b.l(eal), usize::from(size));
    b.write_reg(Reg::Gpr(rt), b.extz(b.l(m), 64));
    b.build()
}

/// `stwcx./stdcx.`: store conditional; always records CR0 as
/// `0b00 ‖ success ‖ XER.SO`.
pub(crate) fn stcx(size: u8, rs: u8, ra: u8, rb: u8) -> Sem {
    let mut b = SemBuilder::new();
    let eal = effective_address(&mut b, ra, Ea::Rb(rb), false);
    let data = b.local("data");
    let bits = usize::from(size) * 8;
    if size == 8 {
        b.read_reg(data, Reg::Gpr(rs));
    } else {
        b.read_reg_slice(data, Reg::Gpr(rs), 64 - bits, bits);
    }
    let success = b.local("success");
    b.write_mem_cond(success, b.l(eal), usize::from(size), b.l(data));
    let so = b.local("so");
    b.read_xer_so(so);
    let flags = b.concat(b.cn(0, 2), b.concat(b.l(success), b.l(so)));
    b.write_crf(0, flags);
    b.build()
}

/// Record-form helper re-exported for store-conditional-free users.
#[allow(dead_code)]
pub(crate) fn record(b: &mut SemBuilder, result: ppc_idl::Exp) {
    record_cr0(b, result);
}

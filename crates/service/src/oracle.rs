//! The query engine: content-addressed probe → (on miss) exactly one
//! exploration per distinct key → persist → serve.
//!
//! The oracle is the single entry point every frontend shares. It owns
//! a [`HarnessConfig`] (the server-side defaults and maxima), an
//! optional [`ResultStore`], and the *singleflight* table that
//! coalesces concurrent duplicate queries: when N clients submit the
//! same program at once, one becomes the leader and explores, the
//! others wait on a condvar and are served the leader's stored record
//! — exactly-once exploration per content key, pinned by the
//! concurrent-client test.
//!
//! Cache hits serve the stored JSONL line **verbatim** (byte-identical
//! to what the cold run wrote — re-serializing would perturb float
//! formatting of `wall_ms`), and the parsed [`TestReport`] rides along
//! so facades can keep their table/exit-policy logic. A hit that is
//! `truncated`/`bounded` parses back to an *inconclusive* report —
//! [`TestReport::conclusive`] is derived from the stored flags, so a
//! bounded record can never be re-served as exhaustive.

use crate::proto::Budget;
use crate::query::Query;
use crate::store::{Probe, ResultStore};
use ppc_litmus::harness::{run_job, HarnessConfig, HarnessReport, Job, TestReport};
use std::collections::HashSet;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Counter snapshot for one oracle (also the wire stats payload).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Queries served from the store (verified record, no exploration).
    pub hits: u64,
    /// Queries that found no (valid) record and led the exploration.
    pub misses: u64,
    /// Explorations actually run. Equal to `misses`; kept as its own
    /// counter because "the warm sweep performed zero explorations" is
    /// an acceptance criterion and deserves a direct reading.
    pub explorations: u64,
    /// Queries that arrived while the same key was being explored and
    /// waited for the leader instead of exploring themselves.
    pub coalesced: u64,
    /// Records that failed verification on probe (torn/corrupt/
    /// collided) and were treated as misses, then overwritten.
    pub corrupt_dropped: u64,
}

/// One answered query.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The JSONL record line — on a hit, the stored bytes verbatim.
    pub line: String,
    /// The parsed report (derived from `line` on hits).
    pub report: TestReport,
    /// Whether the answer came from the store without exploring.
    pub cached: bool,
}

/// A suite run through the cached query path.
#[derive(Clone, Debug)]
pub struct CachedSuite {
    /// Per-test reports in suite order, plus total wall time — the
    /// same aggregate the uncached harness produces.
    pub report: HarnessReport,
    /// Per-test record lines in suite order (hits verbatim), for
    /// byte-stable JSONL output across warm/cold runs.
    pub lines: Vec<String>,
    /// Per-test hit flags, in suite order.
    pub cached: Vec<bool>,
}

impl CachedSuite {
    /// The JSONL report: the stored record lines, newline-terminated.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for line in &self.lines {
            s.push_str(line);
            s.push('\n');
        }
        s
    }
}

/// The reusable query core (see the module docs).
pub struct Oracle {
    cfg: HarnessConfig,
    store: Option<Mutex<ResultStore>>,
    /// Key digests currently being explored (singleflight leaders).
    inflight: Mutex<HashSet<u64>>,
    /// Signalled whenever a leader finishes (waiters re-probe).
    done: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    explorations: AtomicU64,
    coalesced: AtomicU64,
    corrupt_dropped: AtomicU64,
}

impl Oracle {
    /// An uncached oracle: every query explores (the legacy CLI path,
    /// still routed through the same code so stats and coalescing
    /// semantics are uniform).
    #[must_use]
    pub fn new(cfg: HarnessConfig) -> Oracle {
        Oracle {
            cfg,
            store: None,
            inflight: Mutex::new(HashSet::new()),
            done: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            explorations: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            corrupt_dropped: AtomicU64::new(0),
        }
    }

    /// An oracle backed by a persistent result store in `dir`
    /// (created if missing; crash-safely reloaded if present).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors opening the store.
    pub fn with_cache(cfg: HarnessConfig, dir: &Path) -> io::Result<Oracle> {
        let store = ResultStore::open(dir)?;
        let mut o = Oracle::new(cfg);
        o.store = Some(Mutex::new(store));
        Ok(o)
    }

    /// The harness configuration (server defaults and maxima).
    #[must_use]
    pub fn config(&self) -> &HarnessConfig {
        &self.cfg
    }

    /// Whether a result store is attached.
    #[must_use]
    pub fn cached(&self) -> bool {
        self.store.is_some()
    }

    /// Current counter snapshot.
    #[must_use]
    pub fn stats(&self) -> OracleStats {
        OracleStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            explorations: self.explorations.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            corrupt_dropped: self.corrupt_dropped.load(Ordering::Relaxed),
        }
    }

    /// The effective per-query configuration: the oracle's defaults
    /// with the client's budget applied, *clamped by the server's own
    /// maxima* — a client can narrow a budget (and get an honestly
    /// inconclusive record under its own key), never widen one.
    #[must_use]
    pub fn effective_cfg(&self, budget: &Budget) -> HarnessConfig {
        let mut cfg = self.cfg.clone();
        if budget.max_states != 0 {
            cfg.params.max_states = budget.max_states.min(self.cfg.params.max_states);
        }
        if budget.timeout_ms != 0 {
            let req = Duration::from_millis(budget.timeout_ms);
            cfg.timeout_per_test = Some(self.cfg.timeout_per_test.map_or(req, |t| t.min(req)));
        }
        cfg
    }

    /// Answer one query: probe, coalesce, explore at most once,
    /// persist, serve (see the module docs).
    #[must_use]
    pub fn query(&self, job: &Job, budget: &Budget) -> QueryOutcome {
        let threads = self.cfg.inner_threads_for(1);
        self.query_with_threads(job, budget, threads)
    }

    /// [`Oracle::query`] with the exploration thread budget already
    /// resolved by a suite-level pool (threads are *not* part of the
    /// cache key).
    fn query_with_threads(&self, job: &Job, budget: &Budget, threads: usize) -> QueryOutcome {
        let mut cfg = self.effective_cfg(budget);
        cfg.params.threads = threads;
        let Some(store) = &self.store else {
            return self.explore(job, &cfg);
        };
        let key = Query::from_harness(job, &cfg).key();
        loop {
            match store.lock().expect("result store poisoned").get(&key) {
                Probe::Hit(line) => {
                    if let Ok(report) = TestReport::from_json_line(&line) {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return QueryOutcome {
                            line,
                            report,
                            cached: true,
                        };
                    }
                    // Checksummed but unparseable (producer/consumer
                    // drift that should have been a version bump):
                    // treated exactly like corruption.
                    self.corrupt_dropped.fetch_add(1, Ordering::Relaxed);
                }
                Probe::Corrupt => {
                    self.corrupt_dropped.fetch_add(1, Ordering::Relaxed);
                }
                Probe::Miss => {}
            }
            // Singleflight: become the leader or wait for the current
            // one and re-probe (the loop).
            {
                let mut infl = self.inflight.lock().expect("inflight set poisoned");
                if !infl.contains(&key.digest) {
                    infl.insert(key.digest);
                    break; // leader
                }
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                while infl.contains(&key.digest) {
                    infl = self.done.wait(infl).expect("inflight set poisoned");
                }
                // Leader finished (or failed to persist): re-probe.
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let outcome = self.explore(job, &cfg);
        if let Err(e) = store
            .lock()
            .expect("result store poisoned")
            .put(&key, &outcome.line)
        {
            // A failed persist degrades the cache, not the answer: the
            // live result is still served; waiters re-probe, miss, and
            // explore themselves.
            eprintln!("oracle: failed to persist record: {e}");
        }
        self.inflight
            .lock()
            .expect("inflight set poisoned")
            .remove(&key.digest);
        self.done.notify_all();
        outcome
    }

    /// Run the exploration (the only place the harness is invoked).
    fn explore(&self, job: &Job, cfg: &HarnessConfig) -> QueryOutcome {
        self.explorations.fetch_add(1, Ordering::Relaxed);
        let report = run_job(job, cfg);
        QueryOutcome {
            line: report.to_json(),
            report,
            cached: false,
        }
    }

    /// Run a whole suite through the cached query path on the same
    /// worker-pool shape as `run_suite_jobs` (claim counter, clamped
    /// inner threads, suite-order results). With a warm store this
    /// performs zero explorations and returns the stored lines
    /// verbatim.
    #[must_use]
    pub fn run_suite_cached(&self, suite: &[Job]) -> CachedSuite {
        let t0 = Instant::now();
        let pool = self.cfg.pool_size(suite.len());
        let inner_threads = self.cfg.inner_threads_for(pool);
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<QueryOutcome>>> = Mutex::new(vec![None; suite.len()]);

        std::thread::scope(|s| {
            for _ in 0..pool {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = suite.get(i) else { break };
                    let outcome = self.query_with_threads(job, &Budget::default(), inner_threads);
                    slots.lock().expect("outcome slots poisoned")[i] = Some(outcome);
                });
            }
        });

        let outcomes: Vec<QueryOutcome> = slots
            .into_inner()
            .expect("outcome slots poisoned")
            .into_iter()
            .map(|r| r.expect("every job produced an outcome"))
            .collect();
        let mut reports = Vec::with_capacity(outcomes.len());
        let mut lines = Vec::with_capacity(outcomes.len());
        let mut cached = Vec::with_capacity(outcomes.len());
        for o in outcomes {
            reports.push(o.report);
            lines.push(o.line);
            cached.push(o.cached);
        }
        CachedSuite {
            report: HarnessReport {
                reports,
                wall: t0.elapsed(),
            },
            lines,
            cached,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_litmus::library;
    use ppc_model::ModelParams;
    use std::fs;

    fn small_cfg() -> HarnessConfig {
        HarnessConfig {
            params: ModelParams {
                threads: 1,
                ..ModelParams::default()
            },
            jobs: 1,
            ..HarnessConfig::default()
        }
    }

    fn tmp() -> std::path::PathBuf {
        ppc_model::store::create_unique_temp_dir("ppcmem-oracle-test").expect("temp dir")
    }

    /// Cold query explores and persists; warm query serves the same
    /// bytes without exploring — across a *process restart* (a fresh
    /// oracle over the same directory).
    #[test]
    fn warm_query_is_byte_identical_and_exploration_free() {
        let dir = tmp();
        let job = Job::from_entry(&library()[0]);
        let cold_line = {
            let oracle = Oracle::with_cache(small_cfg(), &dir).expect("oracle");
            let out = oracle.query(&job, &Budget::default());
            assert!(!out.cached);
            assert_eq!(oracle.stats().explorations, 1);
            out.line
        };
        let oracle = Oracle::with_cache(small_cfg(), &dir).expect("reopened oracle");
        let out = oracle.query(&job, &Budget::default());
        assert!(out.cached, "second query must be a cache hit");
        assert_eq!(out.line, cold_line, "hit must serve the stored bytes");
        let stats = oracle.stats();
        assert_eq!(stats.explorations, 0, "a hit must not explore");
        assert_eq!(stats.hits, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    /// A truncated-budget record is cached and re-served as
    /// *inconclusive* — never laundered into a conclusive verdict.
    #[test]
    fn truncated_record_stays_inconclusive_on_reserve() {
        let dir = tmp();
        let oracle = Oracle::with_cache(small_cfg(), &dir).expect("oracle");
        // MP explores thousands of states; 10 is guaranteed truncation,
        // and MP's expected-Allowed witness is unreachable that fast.
        let entry = library()
            .into_iter()
            .find(|e| e.name == "MP")
            .expect("MP in library");
        let job = Job::from_entry(&entry);
        let budget = Budget {
            max_states: 10,
            timeout_ms: 0,
        };
        let cold = oracle.query(&job, &budget);
        assert!(cold.report.truncated, "10-state budget must truncate");
        assert!(
            !cold.report.conclusive(),
            "truncated unwitnessed ⇒ inconclusive"
        );
        let warm = oracle.query(&job, &budget);
        assert!(warm.cached, "truncated records are cached too");
        assert_eq!(warm.line, cold.line);
        assert!(
            !warm.report.conclusive(),
            "a cached truncated record must re-serve as inconclusive"
        );
        // The narrow budget lives under its own key: a default-budget
        // query must not be served the truncated record.
        let full = oracle.query(&job, &Budget::default());
        assert!(!full.cached, "different budget ⇒ different key");
        assert!(full.report.conclusive());
        let _ = fs::remove_dir_all(&dir);
    }

    /// A corrupted stored record is dropped, re-explored, and
    /// overwritten — counted, never served.
    #[test]
    fn corrupt_record_is_reexplored_and_overwritten() {
        let dir = tmp();
        let job = Job::from_entry(&library()[0]);
        {
            let oracle = Oracle::with_cache(small_cfg(), &dir).expect("oracle");
            let _ = oracle.query(&job, &Budget::default());
        }
        // Flip a byte inside the stored line (past the 16-byte header
        // and the key) so framing survives but the checksum does not.
        let log = dir.join(crate::store::LOG_NAME);
        let mut bytes = fs::read(&log).expect("read log");
        let last = bytes.len() - 2;
        bytes[last] ^= 0x01;
        fs::write(&log, &bytes).expect("corrupt log");

        let oracle = Oracle::with_cache(small_cfg(), &dir).expect("reopen");
        let out = oracle.query(&job, &Budget::default());
        assert!(!out.cached, "corrupt record must not be served");
        let stats = oracle.stats();
        assert_eq!(stats.corrupt_dropped, 1);
        assert_eq!(stats.explorations, 1);
        // The overwrite shadows the corrupt record for good.
        let again = oracle.query(&job, &Budget::default());
        assert!(again.cached);
        assert_eq!(again.line, out.line);
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Arithmetic, logical, shift/rotate, comparison, and counting operations
//! over lifted bitvectors.
//!
//! Undef propagation is conservative per operation: for bitwise operations
//! it is exact per bit; for arithmetic, an undefined input bit poisons the
//! output from its position of influence upward (ripple-carry style); for
//! comparisons and counts the result is undefined whenever undefined bits
//! could change it.

use crate::bv::mask;
use crate::{Bit, Bv, Tribool};

impl Bv {
    /// Bitwise NOT.
    #[must_use]
    pub fn not(&self) -> Bv {
        if let Some((n, ones, undef)) = self.small_parts() {
            // Defined bits flip; undef stays undef.
            return Bv::small(n, mask(n) & !(ones | undef), undef);
        }
        self.iter().map(Bit::not).collect()
    }

    fn zip_with(&self, other: &Bv, f: impl Fn(Bit, Bit) -> Bit) -> Bv {
        assert_eq!(
            self.len(),
            other.len(),
            "bitwise operation on different lengths {} vs {}",
            self.len(),
            other.len()
        );
        self.iter()
            .zip(other.iter())
            .map(|(a, b)| f(a, b))
            .collect()
    }

    /// The packed planes of both operands when both are small, with the
    /// length equality check the bitwise operations share.
    fn zip_parts(&self, other: &Bv) -> Option<(usize, u64, u64, u64, u64)> {
        let (n, ao, au) = self.small_parts()?;
        let (m, bo, bu) = other.small_parts()?;
        assert_eq!(n, m, "bitwise operation on different lengths {n} vs {m}");
        Some((n, ao, au, bo, bu))
    }

    /// Bitwise AND.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ (as do the other bitwise operations).
    #[must_use]
    pub fn and(&self, other: &Bv) -> Bv {
        if let Some((n, ao, au, bo, bu)) = self.zip_parts(other) {
            // `0 & x = 0` even for undef x: a position is undef only if
            // neither side is a definite zero and the result is not one.
            let ones = ao & bo;
            let undef = (ao | au) & (bo | bu) & !ones;
            return Bv::small(n, ones, undef);
        }
        self.zip_with(other, Bit::and)
    }

    /// Bitwise OR.
    #[must_use]
    pub fn or(&self, other: &Bv) -> Bv {
        if let Some((n, ao, au, bo, bu)) = self.zip_parts(other) {
            let ones = ao | bo;
            let undef = (au | bu) & !ones;
            return Bv::small(n, ones, undef);
        }
        self.zip_with(other, Bit::or)
    }

    /// Bitwise XOR.
    #[must_use]
    pub fn xor(&self, other: &Bv) -> Bv {
        if let Some((n, ao, au, bo, bu)) = self.zip_parts(other) {
            let undef = au | bu;
            return Bv::small(n, (ao ^ bo) & !undef, undef);
        }
        self.zip_with(other, Bit::xor)
    }

    /// Bitwise NAND.
    #[must_use]
    pub fn nand(&self, other: &Bv) -> Bv {
        self.and(other).not()
    }

    /// Bitwise NOR.
    #[must_use]
    pub fn nor(&self, other: &Bv) -> Bv {
        self.or(other).not()
    }

    /// Bitwise equivalence (XNOR).
    #[must_use]
    pub fn eqv(&self, other: &Bv) -> Bv {
        self.xor(other).not()
    }

    /// `self AND NOT other` (the POWER `andc` operation).
    #[must_use]
    pub fn andc(&self, other: &Bv) -> Bv {
        self.and(&other.not())
    }

    /// `self OR NOT other` (the POWER `orc` operation).
    #[must_use]
    pub fn orc(&self, other: &Bv) -> Bv {
        self.or(&other.not())
    }

    /// Addition with an explicit carry-in, returning
    /// `(sum, carry_out, signed_overflow)`.
    ///
    /// This is the primitive behind POWER's carrying/extended arithmetic
    /// (`addc`, `adde`, `subfe`, …): `subf` is `¬a + b + 1`. Undefined
    /// inputs poison the carry chain upward.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn add_with_carry(&self, other: &Bv, carry_in: Bit) -> (Bv, Bit, Bit) {
        assert_eq!(self.len(), other.len(), "add on different lengths");
        let n = self.len();
        if n >= 1 && !carry_in.is_undef() {
            if let (Some((_, a, 0)), Some((_, b, 0))) = (self.small_parts(), other.small_parts()) {
                // Fully defined operands: one wide add replaces the
                // per-bit carry chain.
                let wide = u128::from(a) + u128::from(b) + u128::from(carry_in == Bit::One);
                let sum = (wide as u64) & mask(n);
                let carry_out = (wide >> n) & 1 == 1;
                // Signed overflow: the sign of the result disagrees with
                // both (same-signed) operands — equivalent to
                // carry-into-MSB xor carry-out.
                let overflow = ((sum ^ a) & (sum ^ b)) >> (n - 1) & 1 == 1;
                return (
                    Bv::small(n, sum, 0),
                    Bit::from_bool(carry_out),
                    Bit::from_bool(overflow),
                );
            }
        }
        let mut out = vec![Bit::Undef; n];
        let mut carry = carry_in;
        let mut carry_prev = carry_in; // carry into the MSB position
        for i in (0..n).rev() {
            let a = self.bit(i);
            let b = other.bit(i);
            if i == 0 {
                carry_prev = carry;
            }
            // sum bit = a xor b xor carry
            out[i] = a.xor(b).xor(carry);
            // carry out = majority(a, b, carry)
            carry = a.and(b).or(a.and(carry)).or(b.and(carry));
        }
        let overflow = carry.xor(carry_prev);
        (Bv::from_bits(out), carry, overflow)
    }

    /// Two's complement addition (dropping carry-out).
    #[must_use]
    pub fn add(&self, other: &Bv) -> Bv {
        self.add_with_carry(other, Bit::Zero).0
    }

    /// Two's complement subtraction `self - other`.
    #[must_use]
    pub fn sub(&self, other: &Bv) -> Bv {
        other.not().add_with_carry(self, Bit::One).0
    }

    /// Two's complement negation.
    #[must_use]
    pub fn neg(&self) -> Bv {
        self.not()
            .add_with_carry(&Bv::zeros(self.len()), Bit::One)
            .0
    }

    /// Full multiplication producing `2 * len` bits, with `signed`
    /// controlling the interpretation of both operands.
    ///
    /// Any undefined input bit makes the entire product undefined (the
    /// influence analysis that could do better is not worth the complexity;
    /// the paper treats multiply-word high result bits as undefined anyway).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ or exceed 64 bits.
    #[must_use]
    pub fn mul_full(&self, other: &Bv, signed: bool) -> Bv {
        assert_eq!(self.len(), other.len(), "mul on different lengths");
        assert!(self.len() <= 64, "mul supports at most 64-bit operands");
        let n = self.len();
        if self.has_undef() || other.has_undef() {
            return Bv::undef(2 * n);
        }
        let (a, b) = if signed {
            (
                self.to_i64().expect("defined") as i128,
                other.to_i64().expect("defined") as i128,
            )
        } else {
            (
                self.to_u64().expect("defined") as i128,
                other.to_u64().expect("defined") as i128,
            )
        };
        let p = (a.wrapping_mul(b)) as u128;
        let mut bits = Vec::with_capacity(2 * n);
        for i in (0..2 * n).rev() {
            bits.push(Bit::from_bool((p >> i) & 1 == 1));
        }
        Bv::from_bits(bits)
    }

    /// Low half of the product (the `mull*` instructions).
    #[must_use]
    pub fn mul_low(&self, other: &Bv) -> Bv {
        let n = self.len();
        self.mul_full(other, false).slice(n, n)
    }

    /// High half of the product (the `mulh*` instructions).
    #[must_use]
    pub fn mul_high(&self, other: &Bv, signed: bool) -> Bv {
        let n = self.len();
        self.mul_full(other, signed).slice(0, n)
    }

    /// Division `self / other`. Per the POWER architecture the quotient is
    /// *undefined* on division by zero and on signed overflow
    /// (`MIN / -1`), which lifted bits represent directly.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ or exceed 64 bits.
    #[must_use]
    pub fn div(&self, other: &Bv, signed: bool) -> Bv {
        assert_eq!(self.len(), other.len(), "div on different lengths");
        assert!(self.len() <= 64, "div supports at most 64-bit operands");
        let n = self.len();
        if self.has_undef() || other.has_undef() {
            return Bv::undef(n);
        }
        if signed {
            let a = self.to_i64().expect("defined");
            let b = other.to_i64().expect("defined");
            let min = if n == 64 {
                i64::MIN
            } else {
                -(1i64 << (n - 1))
            };
            if b == 0 || (a == min && b == -1) {
                return Bv::undef(n);
            }
            Bv::from_i64(a / b, n)
        } else {
            let a = self.to_u64().expect("defined");
            let b = other.to_u64().expect("defined");
            if b == 0 {
                return Bv::undef(n);
            }
            Bv::from_u64(a / b, n)
        }
    }

    /// Shift left by a concrete amount, filling with zeros. Shifts of the
    /// full width or more produce all zeros.
    #[must_use]
    pub fn shl(&self, amount: usize) -> Bv {
        let n = self.len();
        if amount >= n {
            return Bv::zeros(n);
        }
        if let Some((_, ones, undef)) = self.small_parts() {
            // amount < n <= 64, so the shifts are by at most 63.
            return Bv::small(n, (ones << amount) & mask(n), (undef << amount) & mask(n));
        }
        self.iter()
            .skip(amount)
            .chain(std::iter::repeat_n(Bit::Zero, amount))
            .collect()
    }

    /// Logical shift right by a concrete amount, filling with zeros.
    #[must_use]
    pub fn lshr(&self, amount: usize) -> Bv {
        let n = self.len();
        if amount >= n {
            return Bv::zeros(n);
        }
        if let Some((_, ones, undef)) = self.small_parts() {
            return Bv::small(n, ones >> amount, undef >> amount);
        }
        std::iter::repeat_n(Bit::Zero, amount)
            .chain(self.iter().take(n - amount))
            .collect()
    }

    /// Arithmetic shift right by a concrete amount, replicating the sign
    /// bit.
    #[must_use]
    pub fn ashr(&self, amount: usize) -> Bv {
        let n = self.len();
        let sign = if n == 0 { Bit::Zero } else { self.bit(0) };
        if amount >= n {
            return std::iter::repeat_n(sign, n).collect();
        }
        if let Some((_, ones, undef)) = self.small_parts() {
            let fill = mask(n) & !(mask(n) >> amount); // the top `amount` bits
            let (mut ones, mut undef) = (ones >> amount, undef >> amount);
            match sign {
                Bit::Zero => {}
                Bit::One => ones |= fill,
                Bit::Undef => undef |= fill,
            }
            return Bv::small(n, ones, undef);
        }
        std::iter::repeat_n(sign, amount)
            .chain(self.iter().take(n - amount))
            .collect()
    }

    /// Rotate left by a concrete amount.
    #[must_use]
    pub fn rotl(&self, amount: usize) -> Bv {
        let n = self.len();
        if n == 0 {
            return Bv::empty();
        }
        let amount = amount % n;
        if amount == 0 {
            return self.clone();
        }
        if let Some((_, ones, undef)) = self.small_parts() {
            // 1 <= amount < n <= 64, so both shifts are by at most 63.
            let rot = |v: u64| ((v << amount) | (v >> (n - amount))) & mask(n);
            return Bv::small(n, rot(ones), rot(undef));
        }
        self.iter()
            .skip(amount)
            .chain(self.iter().take(amount))
            .collect()
    }

    /// Unsigned comparison `self < other`; [`Tribool::Undef`] whenever
    /// undefined bits could change the answer.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn lt_unsigned(&self, other: &Bv) -> Tribool {
        assert_eq!(self.len(), other.len(), "compare on different lengths");
        if let (Some((_, a, 0)), Some((_, b, 0))) = (self.small_parts(), other.small_parts()) {
            return Tribool::from_bool(a < b);
        }
        for (a, b) in self.iter().zip(other.iter()) {
            match (a, b) {
                (Bit::Undef, _) | (_, Bit::Undef) => return Tribool::Undef,
                (Bit::Zero, Bit::One) => return Tribool::True,
                (Bit::One, Bit::Zero) => return Tribool::False,
                _ => {}
            }
        }
        Tribool::False
    }

    /// Signed comparison `self < other`.
    #[must_use]
    pub fn lt_signed(&self, other: &Bv) -> Tribool {
        assert_eq!(self.len(), other.len(), "compare on different lengths");
        if self.is_empty() {
            return Tribool::False;
        }
        // Flip the sign bits and compare unsigned.
        let a = self.with_bit(0, self.bit(0).not());
        let b = other.with_bit(0, other.bit(0).not());
        a.lt_unsigned(&b)
    }

    /// Equality as a [`Tribool`]: undefined if any bit pair has an undef on
    /// either side and the defined bits do not already differ.
    #[must_use]
    pub fn eq_lifted(&self, other: &Bv) -> Tribool {
        assert_eq!(self.len(), other.len(), "compare on different lengths");
        if let (Some((_, ao, au)), Some((_, bo, bu))) = (self.small_parts(), other.small_parts()) {
            if (ao ^ bo) & !au & !bu != 0 {
                return Tribool::False; // mutually defined bits differ
            }
            return if au | bu == 0 {
                Tribool::True
            } else {
                Tribool::Undef
            };
        }
        let mut seen_undef = false;
        for (a, b) in self.iter().zip(other.iter()) {
            match (a, b) {
                (Bit::Undef, _) | (_, Bit::Undef) => seen_undef = true,
                (a, b) if a != b => return Tribool::False,
                _ => {}
            }
        }
        if seen_undef {
            Tribool::Undef
        } else {
            Tribool::True
        }
    }

    /// Count leading zeros; `None` if undefined bits precede the first
    /// defined one.
    #[must_use]
    pub fn count_leading_zeros(&self) -> Option<usize> {
        let mut count = 0;
        for b in self.iter() {
            match b {
                Bit::Zero => count += 1,
                Bit::One => return Some(count),
                Bit::Undef => return None,
            }
        }
        Some(count)
    }

    /// Population count per the `popcntb`-family; `None` if any bit is
    /// undefined.
    #[must_use]
    pub fn popcount(&self) -> Option<usize> {
        if let Some((_, ones, undef)) = self.small_parts() {
            return (undef == 0).then(|| ones.count_ones() as usize);
        }
        let mut count = 0;
        for b in self.iter() {
            match b.to_bool() {
                Some(true) => count += 1,
                Some(false) => {}
                None => return None,
            }
        }
        Some(count)
    }
}
